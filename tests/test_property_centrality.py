"""Property-based tests for the centrality measures and metrics."""

import string

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.betweenness import betweenness_scores
from repro.core.builder import build_graph_from_columns
from repro.core.lcc import lcc_scores
from repro.eval.metrics import (
    average_precision,
    precision_recall_at_k,
    topk_curve,
)

values_strategy = st.text(
    alphabet=string.ascii_uppercase[:8], min_size=1, max_size=3
)
columns_strategy = st.dictionaries(
    keys=st.text(string.ascii_lowercase, min_size=1, max_size=5),
    values=st.lists(values_strategy, min_size=1, max_size=10),
    min_size=1,
    max_size=5,
)


class TestBetweennessProperties:
    @given(columns_strategy)
    @settings(max_examples=25, deadline=None)
    def test_matches_networkx(self, columns):
        graph = build_graph_from_columns(columns)
        ours = betweenness_scores(graph)
        reference = nx.betweenness_centrality(
            graph.to_networkx(), normalized=True
        )
        for v in range(graph.num_values):
            expected = reference[("val", graph.value_name(v))]
            assert abs(ours[v] - expected) < 1e-9

    @given(columns_strategy)
    @settings(max_examples=40, deadline=None)
    def test_scores_bounded(self, columns):
        graph = build_graph_from_columns(columns)
        scores = betweenness_scores(graph)
        assert np.all(scores >= -1e-12)
        assert np.all(scores <= 1.0 + 1e-12)

    @given(columns_strategy, st.integers(min_value=0, max_value=999))
    @settings(max_examples=25, deadline=None)
    def test_sampling_never_negative(self, columns, seed):
        graph = build_graph_from_columns(columns)
        size = max(1, graph.num_nodes // 2)
        scores = betweenness_scores(graph, sample_size=size, seed=seed)
        assert np.all(scores >= -1e-12)

    @given(columns_strategy)
    @settings(max_examples=25, deadline=None)
    def test_values_endpoint_mode_bounded_by_all(self, columns):
        graph = build_graph_from_columns(columns)
        all_mode = betweenness_scores(graph, normalized=False)
        val_mode = betweenness_scores(
            graph, normalized=False, endpoints="values"
        )
        assert np.all(val_mode <= all_mode + 1e-9)


class TestLCCProperties:
    @given(columns_strategy)
    @settings(max_examples=40, deadline=None)
    def test_both_variants_bounded(self, columns):
        graph = build_graph_from_columns(columns)
        for variant in ("attribute-jaccard", "value-neighbors"):
            scores = lcc_scores(graph, variant=variant)
            assert np.all(scores >= 0.0)
            assert np.all(scores <= 1.0 + 1e-12)

    @given(columns_strategy)
    @settings(max_examples=25, deadline=None)
    def test_attribute_jaccard_matches_bruteforce(self, columns):
        graph = build_graph_from_columns(columns)
        scores = lcc_scores(graph)
        for u in range(graph.num_values):
            neighbors = graph.value_neighbors(u)
            if neighbors.size == 0:
                assert scores[u] == 0.0
                continue
            a_u = set(int(x) for x in graph.value_attributes(u))
            total = 0.0
            for v in neighbors:
                a_v = set(int(x) for x in graph.value_attributes(int(v)))
                total += len(a_u & a_v) / len(a_u | a_v)
            assert abs(scores[u] - total / neighbors.size) < 1e-9


rankings_strategy = st.lists(
    st.text(string.ascii_uppercase[:10], min_size=1, max_size=2),
    min_size=1, max_size=20, unique=True,
)


class TestMetricProperties:
    @given(rankings_strategy, st.data())
    @settings(max_examples=50, deadline=None)
    def test_precision_recall_bounds(self, ranking, data):
        truth = set(
            data.draw(st.lists(st.sampled_from(ranking), min_size=1))
        )
        k = data.draw(st.integers(min_value=0, max_value=len(ranking) + 3))
        pr = precision_recall_at_k(ranking, truth, k)
        assert 0.0 <= pr.precision <= 1.0
        assert 0.0 <= pr.recall <= 1.0
        assert 0.0 <= pr.f1 <= 1.0

    @given(rankings_strategy, st.data())
    @settings(max_examples=50, deadline=None)
    def test_curve_recall_monotone_and_complete(self, ranking, data):
        truth = set(
            data.draw(st.lists(st.sampled_from(ranking), min_size=1))
        )
        curve = topk_curve(ranking, truth)
        assert curve.recall == sorted(curve.recall)
        assert curve.recall[-1] == 1.0  # truth drawn from the ranking

    @given(rankings_strategy, st.data())
    @settings(max_examples=50, deadline=None)
    def test_average_precision_bounds(self, ranking, data):
        truth = set(
            data.draw(st.lists(st.sampled_from(ranking), min_size=1))
        )
        assert 0.0 <= average_precision(ranking, truth) <= 1.0

    @given(rankings_strategy, st.data())
    @settings(max_examples=50, deadline=None)
    def test_perfect_prefix_has_ap_one(self, ranking, data):
        size = data.draw(
            st.integers(min_value=1, max_value=len(ranking))
        )
        truth = set(ranking[:size])
        assert average_precision(ranking, truth) == 1.0
