"""Tests for DetectRequest/DetectResponse/ranking JSON serialization."""

import json

import pytest

from repro import (
    DetectRequest,
    DetectResponse,
    HomographIndex,
    HomographRanking,
)


@pytest.fixture
def response(figure1_lake):
    return HomographIndex(figure1_lake).detect(
        DetectRequest(measure="betweenness", sample_size=5, seed=42)
    )


class TestRequest:
    def test_defaults(self):
        request = DetectRequest()
        assert request.measure == "betweenness"
        assert request.sample_size is None

    def test_hashable_and_equal(self):
        a = DetectRequest(measure="lcc", options={"b": 2, "a": 1})
        b = DetectRequest(measure="lcc", options=[("a", 1), ("b", 2)])
        assert a == b
        assert hash(a) == hash(b)
        assert a.cache_key == b.cache_key

    def test_option_lookup(self):
        request = DetectRequest(options={"alpha": 0.5})
        assert request.option("alpha") == 0.5
        assert request.option("missing", "fallback") == "fallback"

    def test_roundtrip(self):
        request = DetectRequest(
            measure="lcc", seed=3, options={"alpha": 0.5}
        )
        assert DetectRequest.from_dict(request.to_dict()) == request

    def test_sequence_options_stay_hashable_and_roundtrip(self):
        # JSON turns tuples into lists; both spellings normalize to the
        # same hashable request, so cache keys survive a round-trip.
        a = DetectRequest(options={"weights": (1, 2), "tags": ["x", "y"]})
        b = DetectRequest.from_dict(a.to_dict())
        assert a == b
        assert a.cache_key == b.cache_key
        hash(a.cache_key)

    def test_with_overrides(self):
        base = DetectRequest(measure="betweenness", seed=1)
        changed = base.with_overrides(seed=2)
        assert changed.seed == 2
        assert changed.measure == "betweenness"
        assert base.seed == 1  # immutable original


class TestResponseRoundTrip:
    def test_json_roundtrip_equality(self, response):
        reloaded = DetectResponse.from_json(response.to_json())
        assert reloaded == response

    def test_roundtrip_preserves_order_and_scores(self, response):
        reloaded = DetectResponse.from_json(response.to_json())
        assert reloaded.ranking.values == response.ranking.values
        for entry in response.ranking:
            assert reloaded.scores[entry.value] == entry.score

    def test_roundtrip_preserves_request(self, response):
        reloaded = DetectResponse.from_json(response.to_json())
        assert reloaded.request == response.request
        assert reloaded.request.sample_size == 5

    def test_lcc_direction_survives(self, figure1_lake):
        response = HomographIndex(figure1_lake).detect(measure="lcc")
        reloaded = DetectResponse.from_json(response.to_json())
        assert reloaded.descending is False
        assert reloaded.parameters == {"variant": "attribute-jaccard"}

    def test_payload_is_plain_json(self, response):
        payload = json.loads(response.to_json(indent=2))
        assert payload["schema"] == 1
        assert payload["measure"] == "betweenness"
        assert isinstance(payload["ranking"], list)
        assert {"rank", "value", "score"} <= set(payload["ranking"][0])

    def test_top_truncation(self, response):
        payload = json.loads(response.to_json(top=2))
        assert len(payload["ranking"]) == 2
        reloaded = DetectResponse.from_json(response.to_json(top=2))
        assert len(reloaded.ranking) == 2
        assert reloaded.top_values(2) == response.top_values(2)

    def test_unknown_schema_rejected(self, response):
        payload = response.to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            DetectResponse.from_dict(payload)

    def test_missing_schema_rejected(self, response):
        payload = response.to_dict()
        del payload["schema"]
        with pytest.raises(ValueError):
            DetectResponse.from_dict(payload)


class TestRankingRoundTrip:
    def test_dict_roundtrip(self, response):
        ranking = response.ranking
        reloaded = HomographRanking.from_dict(ranking.to_dict())
        assert reloaded == ranking
        assert reloaded.measure == ranking.measure
        assert reloaded.descending == ranking.descending

    def test_from_entries_preserves_given_order(self):
        from repro import RankedValue

        entries = [
            RankedValue(rank=1, value="B", score=2.0),
            RankedValue(rank=2, value="A", score=1.0),
        ]
        ranking = HomographRanking.from_entries(
            entries, descending=True, measure="betweenness"
        )
        assert ranking.values == ["B", "A"]
        assert ranking.rank_of("A") == 2
        assert ranking.score_of("B") == 2.0

    def test_rankings_stay_hashable(self):
        a = HomographRanking({"X": 1.0}, descending=True,
                             measure="betweenness")
        b = HomographRanking({"X": 1.0}, descending=True,
                             measure="betweenness")
        assert len({a, b}) == 1

    def test_rankings_compare_by_content(self):
        a = HomographRanking({"X": 1.0, "Y": 2.0}, descending=True,
                             measure="betweenness")
        b = HomographRanking({"Y": 2.0, "X": 1.0}, descending=True,
                             measure="betweenness")
        c = HomographRanking({"X": 1.0, "Y": 2.0}, descending=False,
                             measure="lcc")
        assert a == b
        assert a != c
