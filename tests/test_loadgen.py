"""The load generator itself must be deterministic and exact.

CI cannot assert wall-clock latencies — machines differ — so the load
harness's *own* math is what gets pinned here: seeded schedules are
byte-identical across runs, histogram percentiles match hand-computed
oracles (the fixed bucket edges make that possible), and the report
plumbing (merge, per-lake split, JSON shape) is exact.  The live-
traffic scenarios live in ``benchmarks/test_http_load.py``; nothing
in this file opens a socket.
"""

import math

import pytest

from repro.bench.loadgen import (
    BUCKET_EDGES,
    DEFAULT_MIX,
    LatencyHistogram,
    LoadOp,
    build_mixed_schedule,
    split_schedule,
)


class TestHistogram:
    def test_empty_histogram_is_all_zeros(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.percentile(50) == 0.0
        assert hist.mean == 0.0 and hist.min == 0.0 and hist.max == 0.0

    def test_percentiles_match_hand_computed_oracle(self):
        # Seven samples; p50 is the ceil(0.5*7) = 4th smallest (5ms),
        # answered as its covering bucket edge: the smallest
        # 1e-4 * 1.25**i that is >= 0.005 is i=18.
        hist = LatencyHistogram()
        for ms in (1, 2, 3, 5, 8, 13, 100):
            hist.record(ms / 1000)
        assert hist.percentile(50) == pytest.approx(1e-4 * 1.25 ** 18)
        # p99 -> ceil(0.99*7) = 7th sample = the max, and the edge cap
        # makes percentile(q) never exceed the true maximum.
        assert hist.percentile(99) == pytest.approx(0.1)
        assert hist.percentile(100) == pytest.approx(0.1)
        assert hist.max == pytest.approx(0.1)
        assert hist.min == pytest.approx(0.001)
        assert hist.mean == pytest.approx(0.132 / 7)

    def test_percentile_is_within_one_bucket_of_truth(self):
        # The 25% bucket resolution is the advertised error bound.
        hist = LatencyHistogram()
        samples = [0.0003 * (i + 1) for i in range(200)]
        for sample in samples:
            hist.record(sample)
        true_p95 = samples[int(math.ceil(0.95 * len(samples))) - 1]
        assert true_p95 <= hist.percentile(95) <= true_p95 * 1.25

    def test_extremes_clamp_into_terminal_buckets(self):
        hist = LatencyHistogram()
        hist.record(0.0)            # below the first edge
        hist.record(1e9)            # beyond the last edge
        assert hist.count == 2
        assert hist.percentile(50) == pytest.approx(BUCKET_EDGES[0])
        # The overflow bucket caps at the recorded max, not the edge.
        assert hist.percentile(100) == pytest.approx(1e9)

    def test_merge_equals_single_histogram_over_union(self):
        left, right, union = (
            LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        )
        for ms in (1, 5, 9):
            left.record(ms / 1000)
            union.record(ms / 1000)
        for ms in (2, 40):
            right.record(ms / 1000)
            union.record(ms / 1000)
        left.merge(right)
        assert left.count == union.count == 5
        assert left.to_dict() == union.to_dict()

    def test_to_dict_is_milliseconds(self):
        hist = LatencyHistogram()
        hist.record(0.25)
        payload = hist.to_dict()
        assert payload["count"] == 1
        assert payload["min_ms"] == pytest.approx(250.0)
        assert payload["max_ms"] == pytest.approx(250.0)
        assert 250.0 <= payload["p99_ms"] <= 250.0 * 1.25


class TestScheduleDeterminism:
    def test_same_seed_means_identical_schedule(self):
        first = build_mixed_schedule(("a", "b"), ops=200, seed=42)
        second = build_mixed_schedule(("a", "b"), ops=200, seed=42)
        assert first == second       # LoadOp is a frozen dataclass

    def test_different_seeds_differ(self):
        assert build_mixed_schedule(("a", "b"), ops=200, seed=1) != \
            build_mixed_schedule(("a", "b"), ops=200, seed=2)

    def test_schedule_covers_lakes_and_kinds(self):
        schedule = build_mixed_schedule(("a", "b", "c"), ops=300, seed=0)
        assert len(schedule) == 300
        assert {op.lake for op in schedule} == {"a", "b", "c"}
        assert {op.kind for op in schedule} == \
            {kind for kind, _ in DEFAULT_MIX}

    def test_miss_ops_have_unique_cache_identities(self):
        schedule = build_mixed_schedule(("a",), ops=400, seed=0)
        misses = [op for op in schedule if op.kind == "detect_miss"]
        seeds = [op.request["seed"] for op in misses]
        assert len(seeds) == len(set(seeds)) > 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="at least one lake"):
            build_mixed_schedule((), ops=10)
        with pytest.raises(ValueError, match="ops must be"):
            build_mixed_schedule(("a",), ops=-1)
        with pytest.raises(ValueError, match="unknown op kind"):
            build_mixed_schedule(("a",), ops=10, mix=(("nope", 1),))


class TestSplitSchedule:
    def test_round_robin_partition_preserves_every_op(self):
        schedule = build_mixed_schedule(("a", "b"), ops=101, seed=3)
        parts = split_schedule(schedule, 4)
        assert len(parts) == 4
        assert sorted(len(part) for part in parts) == [25, 25, 25, 26]
        flattened = sorted(
            (op for part in parts for op in part),
            key=lambda op: op.op_id,
        )
        assert flattened == schedule

    def test_more_workers_than_ops_leaves_idle_workers(self):
        ops = [LoadOp("detect_hit", "a", {"measure": "lcc"}, 0)]
        parts = split_schedule(ops, 3)
        assert [len(part) for part in parts] == [1, 0, 0]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers must be"):
            split_schedule([], 0)
