"""Integration tests for the DomainNet end-to-end pipeline."""

import pytest

from repro import DomainNet


class TestPipeline:
    def test_betweenness_detection(self, figure1_lake, figure1_homographs):
        detector = DomainNet.from_lake(figure1_lake)
        result = detector.detect(measure="betweenness")
        # Occurrence pruning keeps the 4 repeated names plus "2", which
        # occurs twice within T2.num (a node, but not a homograph).
        assert len(result.ranking) == 5
        # Both true homographs occupy the top-2.
        assert set(result.top_values(2)) == figure1_homographs

    def test_lcc_detection_on_unpruned_graph(self, figure1_lake):
        # On the full graph, JAGUAR has the lowest LCC of all values.
        detector = DomainNet.from_lake(figure1_lake, prune_candidates=False)
        result = detector.detect(measure="lcc")
        assert result.measure == "lcc"
        assert result.ranking.values[0] == "JAGUAR"

    def test_lcc_weakness_on_pruned_graph(self, figure1_lake):
        # The paper's §5.1 finding in miniature: after pruning, LCC no
        # longer separates homographs — JAGUAR drops to the *worst* rank
        # because its four attributes pairwise-overlap heavily.
        detector = DomainNet.from_lake(figure1_lake)
        result = detector.detect(measure="lcc")
        assert result.ranking.values[-1] == "JAGUAR"

    def test_no_pruning_keeps_all_values(self, figure1_lake):
        detector = DomainNet.from_lake(figure1_lake, prune_candidates=False)
        assert detector.graph.num_values == 37

    def test_pruning_reduces_graph(self, figure1_lake):
        pruned = DomainNet.from_lake(figure1_lake)
        # JAGUAR, PUMA, PANDA, TOYOTA (multi-attribute) and "2"
        # (repeats within one column) survive occurrence pruning.
        assert sorted(pruned.graph.value_names) == [
            "2", "JAGUAR", "PANDA", "PUMA", "TOYOTA"
        ]
        assert pruned.graph.num_attributes == 12

    def test_timing_recorded(self, figure1_lake):
        detector = DomainNet.from_lake(figure1_lake)
        result = detector.detect()
        assert result.graph_seconds >= 0.0
        assert result.measure_seconds >= 0.0

    def test_parameters_recorded(self, figure1_lake):
        detector = DomainNet.from_lake(figure1_lake)
        result = detector.detect(sample_size=5, seed=42)
        assert result.parameters["sample_size"] == 5
        assert result.parameters["seed"] == 42

    def test_lcc_variant_parameter(self, figure1_lake):
        detector = DomainNet.from_lake(figure1_lake)
        result = detector.detect(measure="lcc", lcc_variant="value-neighbors")
        assert result.parameters["variant"] == "value-neighbors"

    def test_unknown_measure_rejected(self, figure1_lake):
        detector = DomainNet.from_lake(figure1_lake)
        with pytest.raises(ValueError):
            detector.detect(measure="pagerank")

    def test_scores_match_ranking(self, figure1_lake):
        detector = DomainNet.from_lake(figure1_lake)
        result = detector.detect()
        for entry in result.ranking:
            assert result.scores[entry.value] == entry.score


class TestLakeUpdates:
    def test_removal_can_dehomograph(self, figure1_lake):
        """Dropping T3 and T4 removes Jaguar's car meaning entirely."""
        figure1_lake.remove_table("T3")
        figure1_lake.remove_table("T4")
        detector = DomainNet.from_lake(figure1_lake)
        result = detector.detect()
        # JAGUAR and PANDA still repeat (T1/T2) but the animal columns
        # are unionable in spirit: scores collapse toward the background.
        scores = result.scores
        assert scores["JAGUAR"] < 0.025  # far below its Figure-1 score
