"""Tests for the scalability substrate (repro.bench.scale)."""

import pytest

from repro.bench.scale import ScaleConfig, extract_subgraphs, generate_scale_lake
from repro.core.builder import build_graph


@pytest.fixture(scope="module")
def small_scale_lake():
    return generate_scale_lake(ScaleConfig(
        num_tables=6, columns_per_table=4, rows_per_table=120,
        shared_vocabulary=500,
    ))


class TestGenerateScaleLake:
    def test_shape(self, small_scale_lake):
        assert len(small_scale_lake) == 6
        assert small_scale_lake.num_attributes == 24
        for table in small_scale_lake:
            assert table.num_rows == 120

    def test_mix_of_shared_and_unique(self, small_scale_lake):
        graph = build_graph(small_scale_lake)
        degrees = [graph.degree(v) for v in range(graph.num_values)]
        assert max(degrees) > 1     # shared tokens span attributes
        assert min(degrees) == 1    # unique ids appear once

    def test_deterministic(self):
        config = ScaleConfig(num_tables=2, rows_per_table=50)
        a = generate_scale_lake(config)
        b = generate_scale_lake(config)
        assert a.table("table0000").rows == b.table("table0000").rows

    def test_size_scales_with_config(self):
        small = generate_scale_lake(
            ScaleConfig(num_tables=2, rows_per_table=50)
        )
        large = generate_scale_lake(
            ScaleConfig(num_tables=4, rows_per_table=100)
        )
        g_small = build_graph(small)
        g_large = build_graph(large)
        assert g_large.num_edges > 2 * g_small.num_edges


class TestExtractSubgraphs:
    def test_targets_reached(self, small_scale_lake):
        graph = build_graph(small_scale_lake)
        targets = [graph.num_edges // 4, graph.num_edges // 2]
        subs = extract_subgraphs(graph, targets, seed=1)
        assert len(subs) == 2
        assert subs[0].num_edges >= targets[0]
        assert subs[1].num_edges >= targets[1]
        assert subs[0].num_edges <= subs[1].num_edges

    def test_subgraphs_nest(self, small_scale_lake):
        graph = build_graph(small_scale_lake)
        subs = extract_subgraphs(
            graph, [graph.num_edges // 4, graph.num_edges // 2], seed=1
        )
        small_attrs = set(subs[0].attribute_names)
        large_attrs = set(subs[1].attribute_names)
        assert small_attrs <= large_attrs

    def test_oversized_target_returns_whole_graph(self, small_scale_lake):
        graph = build_graph(small_scale_lake)
        subs = extract_subgraphs(graph, [graph.num_edges * 10], seed=1)
        assert subs[0].num_edges == graph.num_edges

    def test_invalid_target(self, small_scale_lake):
        graph = build_graph(small_scale_lake)
        with pytest.raises(ValueError):
            extract_subgraphs(graph, [0], seed=1)
