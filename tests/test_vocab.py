"""Unit tests for repro.bench.vocab — vocabulary invariants."""

import pytest

from repro.bench.vocab import (
    PLANTED_HOMOGRAPHS,
    Vocabulary,
    VocabularyError,
    build_vocabularies,
    planted_homographs_normalized,
    planted_meanings,
    validate_vocabularies,
)
from repro.core.normalize import normalize_value


@pytest.fixture(scope="module")
def vocabs():
    return build_vocabularies()


class TestPlantedRegistry:
    def test_exactly_55_planted(self):
        assert len(PLANTED_HOMOGRAPHS) == 55

    def test_all_have_two_types(self):
        for value, types in PLANTED_HOMOGRAPHS.items():
            assert len(types) == 2
            assert types[0] != types[1]

    def test_keys_are_normalized(self):
        for value in PLANTED_HOMOGRAPHS:
            assert value == normalize_value(value)

    def test_paper_examples_present(self):
        # The classes the paper names explicitly in §4.1.
        assert PLANTED_HOMOGRAPHS["SYDNEY"] == ("first_name", "city")
        assert PLANTED_HOMOGRAPHS["JAMAICA"] == ("country_name", "city")
        assert PLANTED_HOMOGRAPHS["LINCOLN"] == ("car_model", "city")
        assert PLANTED_HOMOGRAPHS["CA"] == ("country_code", "state_abbr")
        assert PLANTED_HOMOGRAPHS["PUMPKIN"] == ("grocery", "movie_title")

    def test_meanings_all_two(self):
        meanings = planted_meanings()
        assert set(meanings.values()) == {2}
        assert len(meanings) == 55


class TestBuildVocabularies:
    def test_real_world_sizes(self, vocabs):
        assert len(vocabs["country_name"]) == 193
        assert len(vocabs["country_code"]) == 193
        assert len(vocabs["state_name"]) == 50
        assert len(vocabs["state_abbr"]) == 50

    def test_planted_values_present_on_both_sides(self, vocabs):
        for value, (type_a, type_b) in PLANTED_HOMOGRAPHS.items():
            assert value in vocabs[type_a].normalized()
            assert value in vocabs[type_b].normalized()

    def test_no_unplanned_collisions(self, vocabs):
        # validate_vocabularies raises on violation; reaching here means
        # the invariant holds, but assert pairwise independently too.
        names = sorted(vocabs)
        planted = planted_homographs_normalized()
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                overlap = vocabs[a].normalized() & vocabs[b].normalized()
                assert overlap <= planted, (a, b, overlap - planted)

    def test_abbreviation_class_is_21(self, vocabs):
        codes = vocabs["country_code"].normalized()
        abbrs = vocabs["state_abbr"].normalized()
        assert len(codes & abbrs) == 21

    def test_no_within_type_duplicates(self, vocabs):
        for vocab in vocabs.values():
            normalized = [normalize_value(v) for v in vocab.values]
            assert len(normalized) == len(set(normalized)), vocab.type_name

    def test_tickers_disjoint_from_everything(self, vocabs):
        tickers = vocabs["ticker"].normalized()
        for name, vocab in vocabs.items():
            if name != "ticker":
                assert not (tickers & vocab.normalized())


class TestValidateVocabularies:
    def test_detects_missing_planted(self):
        bad = {
            "country_code": Vocabulary("country_code", ("XX",)),
            "state_abbr": Vocabulary("state_abbr", ("CA",)),
        }
        with pytest.raises(VocabularyError):
            validate_vocabularies(bad)

    def test_detects_unplanned_collision(self):
        bad = {
            "genre": Vocabulary("genre", ("Drama", "Rogue")),
            "car_model": Vocabulary("car_model", ("Rogue",)),
        }
        with pytest.raises(VocabularyError):
            validate_vocabularies(bad)
