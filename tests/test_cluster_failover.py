"""Process-level failover: kill -9 a replica under live load, drop 0.

The PR-10 acceptance proof, asserted rather than benchmarked: a
:class:`~repro.cluster.ReplicaSupervisor` fleet of three ``domainnet
serve`` processes behind a :class:`~repro.cluster.ClusterRouter`
serves a ``run_load`` mixed read workload while one replica is
SIGKILLed mid-run — and the load report shows **zero** client-visible
errors, because the router retried the dying replica's in-flight
reads on its siblings.  The supervisor then restarts the victim and
resyncs it from the primary's oplog back to byte-identical rankings.

Also here: the version fingerprint in ``/cluster/stats``, router
mutation fan-in (writes land once, on the primary, and replicate),
and the rolling restart draining every member without a dropped read.

Subprocess-heavy and deliberately small: one snapshot, short load
windows, jobs-free mix (an async job is sticky to one process; a
SIGKILL between submit and poll would be an honest client-visible
failure, which is exactly why the kill targets read traffic).
"""

import os
import signal
import threading
import time

import pytest

from repro import HomographClient, HomographIndex, Table
from repro.bench.loadgen import build_mixed_schedule, run_load
from repro.cluster import start_cluster

from tests.conftest import make_figure1_lake

#: Read-only op mix: no "job" (sticky) and no "mutate" (primary-pinned
#: but not retryable) — every op the router may replay on a sibling.
READ_MIX = (
    ("detect_hit", 50),
    ("ranking", 35),
    ("detect_miss", 15),
)


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """A three-member fleet over one published snapshot, plus router."""
    snapshot = tmp_path_factory.mktemp("cluster") / "zoo"
    index = HomographIndex(make_figure1_lake())
    index.save(snapshot)
    supervisor, router = start_cluster(snapshot, replicas=3)
    try:
        yield supervisor, router
    finally:
        router.drain()
        supervisor.stop()


def _wait(predicate, timeout=30.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_fleet_serves_reads_from_every_member(cluster):
    supervisor, router = cluster
    client = HomographClient(router.url, timeout=30.0)
    client.wait_ready()
    stats = client._request("GET", "/cluster/stats")
    assert {row["name"] for row in stats["replicas"]} == {
        "primary", "replica-1", "replica-2",
    }
    assert all(row["healthy"] for row in stats["replicas"])
    fingerprint = stats["supervisor"]["fingerprint"]
    assert fingerprint["library"] and fingerprint["snapshot_format"]


def test_kill_dash_nine_drops_zero_reads(cluster):
    supervisor, router = cluster
    victim = supervisor.replicas.get("replica-2")
    pid = supervisor.stats()["pids"]["replica-2"]
    schedules = [
        build_mixed_schedule(["zoo"], ops=30, seed=w, mix=READ_MIX)
        for w in range(3)
    ]
    killer = threading.Timer(
        1.0, lambda: os.kill(pid, signal.SIGKILL)
    )
    killer.start()
    try:
        report = run_load(router.url, schedules, duration=4.0)
    finally:
        killer.cancel()
    # The victim really died mid-run...
    assert _wait(lambda: victim.restarts >= 1)
    # ...and not one read surfaced a failure to a client.
    assert report.errors == {}
    assert report.completed > 0
    # The supervisor healed it back into the pool.
    assert _wait(lambda: victim.healthy)
    HomographClient(victim.url, timeout=30.0).wait_ready()


def test_mutations_replicate_to_byte_identical_rankings(cluster):
    supervisor, router = cluster
    client = HomographClient(router.url, timeout=30.0)
    chain = (
        ("add", Table.from_columns(
            "F1", {"A": ["Jaguar", "Osprey"], "B": ["1", "2"]})),
        ("add", Table.from_columns(
            "F2", {"A": ["Puma", "Asics"], "B": ["1", "2"]})),
        ("remove", "F1"),
        ("add", Table.from_columns(
            "F1", {"A": ["Jaguar", "Heron"], "B": ["1", "2"]})),
        ("add", Table.from_columns(
            "F3", {"A": ["Panda", "Bamboo"], "B": ["1", "2"]})),
    )
    for op, payload in chain:
        if op == "add":
            response = client.add_table(payload)
            assert "oplog_seq" in response  # landed on the primary
        else:
            client.remove_table(payload)
    expected_seq = supervisor.replicas.primary.url and 5
    assert _wait(lambda: all(
        replica.oplog_lag == 0 and replica.applied_seq >= expected_seq
        for replica in supervisor.replicas
        if replica.role != "primary"
    )), supervisor.replicas.stats()
    rankings = {}
    for replica in supervisor.replicas:
        direct = HomographClient(replica.url, timeout=30.0)
        rankings[replica.name] = [
            (entry.rank, entry.value, entry.score)
            for entry in direct.iter_ranking("betweenness")
        ]
    assert (
        rankings["primary"]
        == rankings["replica-1"]
        == rankings["replica-2"]
    )


def test_rolling_restart_drops_zero_reads(cluster):
    supervisor, router = cluster
    stop = threading.Event()
    failures = []

    def reader(worker_id):
        worker = HomographClient(
            router.url, timeout=30.0,
            retry_overloaded=100, retry_backoff=0.05,
        )
        while not stop.is_set():
            try:
                worker.detect(measure="lcc")
            except Exception as error:  # noqa: BLE001 - recorded
                failures.append((worker_id, repr(error)))

    threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(3)
    ]
    for thread in threads:
        thread.start()
    try:
        supervisor.rolling_restart()
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert failures == []
    # Every member cycled exactly once more and rejoined healthy.
    assert all(replica.healthy for replica in supervisor.replicas)
    # The primary recovered its oplog across the restart: the next
    # mutation continues the sequence instead of restarting it.
    client = HomographClient(router.url, timeout=30.0)
    response = client.add_table(Table.from_columns(
        "F9", {"A": ["Heron", "Crane"], "B": ["1", "2"]}
    ))
    assert response["oplog_seq"] == 6
