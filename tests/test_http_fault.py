"""Fault injection: slow and stalled clients must not wedge the server.

A client that sends half a request body and then goes silent is the
classic slow-loris failure mode for a thread-per-connection server
with non-daemon handler threads: without a socket timeout the read
blocks forever, the handler thread never exits, and ``drain()`` hangs
joining it.  These tests drive raw sockets (no client library — the
whole point is sending *malformed traffic*) against a server with a
short ``request_timeout`` and pin that:

* a stalled body earns a ``408 request-timeout`` and a closed
  connection, within a bound tied to the configured timeout;
* a *slow but moving* body still succeeds — the timeout is per-idle-
  read, not a total request deadline;
* a stalled request line closes quietly (no response owed);
* stalled clients never occupy admission-gate slots, never block
  sibling requests, and their handler threads are reaped — even a
  pile of them leaves the server drainable in bounded time.
"""

import json
import socket
import threading
import time

import pytest

from repro import HomographIndex, start_server
from tests.test_http_protocol import raw_request

REQUEST_TIMEOUT = 1.0
#: Generous CI bound: the server owes its verdict in one idle timeout,
#: plus slack for loaded machines.
VERDICT_BOUND = REQUEST_TIMEOUT + 8.0


@pytest.fixture
def short_fuse_server(figure1_lake):
    index = HomographIndex(figure1_lake)
    server = start_server(
        index, port=0, request_timeout=REQUEST_TIMEOUT, max_concurrent=2
    )
    yield server
    server.drain()


def _connect(server) -> socket.socket:
    host, port = server.server_address[:2]
    connection = socket.create_connection(
        (host, port), timeout=VERDICT_BOUND
    )
    return connection


def _send_partial_detect(connection, body: bytes, sent: int) -> None:
    """A valid request head claiming ``len(body)`` bytes, sending fewer."""
    head = (
        f"POST /detect HTTP/1.1\r\n"
        f"Host: x\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    ).encode()
    connection.sendall(head + body[:sent])


def _read_until_eof(connection) -> bytes:
    chunks = []
    while True:
        chunk = connection.recv(65536)
        if not chunk:
            return b"".join(chunks)
        chunks.append(chunk)


def _wait_threads_back(baseline, bound=10.0):
    deadline = time.monotonic() + bound
    while time.monotonic() < deadline:
        extra = [
            t for t in threading.enumerate()
            if t not in baseline and t.is_alive()
        ]
        if not extra:
            return []
        time.sleep(0.05)
    return [t.name for t in extra]


class TestStalledBody:
    def test_stalled_body_gets_408_then_eof(self, short_fuse_server):
        body = json.dumps({"measure": "lcc"}).encode()
        connection = _connect(short_fuse_server)
        try:
            started = time.monotonic()
            _send_partial_detect(connection, body, sent=3)
            raw = _read_until_eof(connection)   # stall: never send more
            elapsed = time.monotonic() - started
        finally:
            connection.close()
        assert elapsed < VERDICT_BOUND
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 408")
        error = json.loads(payload)["error"]
        assert error["code"] == "request-timeout"
        assert error["status"] == 408

    def test_slow_but_moving_body_succeeds(self, short_fuse_server):
        # Chunk gaps below the idle timeout must not trip it: the
        # fuse is per-read, not a total-request deadline.
        body = json.dumps({"measure": "lcc"}).encode()
        connection = _connect(short_fuse_server)
        try:
            _send_partial_detect(connection, body, sent=3)
            for chunk_start in range(3, len(body), 7):
                time.sleep(REQUEST_TIMEOUT / 4)
                connection.sendall(body[chunk_start:chunk_start + 7])
            connection.settimeout(VERDICT_BOUND)
            raw = connection.recv(65536)
        finally:
            connection.close()
        assert raw.startswith(b"HTTP/1.1 200")

    def test_stalled_request_line_closes_quietly(self, short_fuse_server):
        # No parseable request yet, so no response is owed: the server
        # just hangs up after the idle timeout.
        connection = _connect(short_fuse_server)
        try:
            connection.sendall(b"POST /de")       # half a request line
            raw = _read_until_eof(connection)
        finally:
            connection.close()
        assert raw == b""


class TestStalledClientsDoNotWedge:
    def test_sibling_requests_serve_while_client_stalls(
        self, short_fuse_server
    ):
        body = json.dumps({"measure": "lcc"}).encode()
        stalled = _connect(short_fuse_server)
        try:
            _send_partial_detect(stalled, body, sent=1)
            # While the stall is pending, a well-behaved request
            # passes straight through on a fresh connection.
            status, _, payload = raw_request(
                short_fuse_server, "POST", "/detect", body=body,
                headers={"Content-Length": str(len(body))},
            )
            assert status == 200
            assert "PANDA" in {
                entry["value"] for entry in payload["ranking"]
            }
        finally:
            stalled.close()

    def test_stalled_clients_hold_no_admission_slots(
        self, short_fuse_server
    ):
        # Admission happens *after* the body arrives; a stalled body
        # must never pin a compute slot while it waits for its 408.
        body = json.dumps({"measure": "lcc"}).encode()
        stalled = [_connect(short_fuse_server) for _ in range(3)]
        try:
            for connection in stalled:
                _send_partial_detect(connection, body, sent=2)
            status, _, stats = raw_request(
                short_fuse_server, "GET", "/stats"
            )
            assert status == 200
            assert stats["http"]["in_flight"] == 0
            assert stats["http"]["gate"]["fresh_in_flight"] == 0
            # Every stalled socket is individually timed out and told.
            for connection in stalled:
                raw = _read_until_eof(connection)
                assert b"408" in raw and b"request-timeout" in raw
        finally:
            for connection in stalled:
                connection.close()

    def test_handler_threads_are_reaped_after_timeouts(
        self, figure1_lake
    ):
        index = HomographIndex(figure1_lake)
        server = start_server(
            index, port=0, request_timeout=REQUEST_TIMEOUT
        )
        try:
            baseline = set(threading.enumerate())
            connections = [_connect(server) for _ in range(4)]
            try:
                for connection in connections:
                    connection.sendall(b"GET")    # stalled request line
                time.sleep(REQUEST_TIMEOUT / 2)   # threads now parked
            finally:
                for connection in connections:
                    connection.close()
            leaked = _wait_threads_back(baseline)
            assert not leaked, f"handler threads not reaped: {leaked}"
        finally:
            server.drain()

    def test_drain_completes_promptly_with_a_stalled_client(
        self, figure1_lake
    ):
        index = HomographIndex(figure1_lake)
        server = start_server(
            index, port=0, request_timeout=REQUEST_TIMEOUT
        )
        body = json.dumps({"measure": "lcc"}).encode()
        stalled = _connect(server)
        try:
            _send_partial_detect(stalled, body, sent=1)
            started = time.monotonic()
            server.drain()
            elapsed = time.monotonic() - started
            # Bounded by the request timeout (the stalled read must
            # expire) plus generous scheduling slack — not by the
            # 10-second default a pre-timeout server would hit, and
            # never forever.
            assert elapsed < VERDICT_BOUND
        finally:
            stalled.close()
            server.drain()   # idempotent; a no-op after the first
