"""Unit tests for repro.datalake.profiling."""

from repro import DataLake, Table
from repro.datalake.profiling import (
    cardinality_range,
    profile_attributes,
    value_attribute_index,
    value_cardinalities,
)


class TestProfileAttributes:
    def test_counts(self, figure1_lake):
        profiles = {p.qualified_name: p for p in profile_attributes(figure1_lake)}
        assert len(profiles) == 12
        at_risk = profiles["T1.At Risk"]
        assert at_risk.num_rows == 4
        assert at_risk.num_distinct == 4
        assert at_risk.num_empty == 0
        assert at_risk.kind == "text"

    def test_numeric_kind(self, figure1_lake):
        profiles = {p.qualified_name: p for p in profile_attributes(figure1_lake)}
        assert profiles["T2.num"].kind == "numeric"
        assert profiles["T4.Revenue"].kind == "numeric"

    def test_duplicates_counted_once(self, figure1_lake):
        profiles = {p.qualified_name: p for p in profile_attributes(figure1_lake)}
        # T2.name has Panda twice
        assert profiles["T2.name"].num_distinct == 3

    def test_fill_ratio(self):
        lake = DataLake([Table("t", ["a"], [["x"], [""], ["y"], [""]])])
        profile = profile_attributes(lake)[0]
        assert profile.fill_ratio == 0.5

    def test_fill_ratio_empty_table(self):
        lake = DataLake([Table("t", ["a"], [])])
        assert profile_attributes(lake)[0].fill_ratio == 0.0


class TestValueAttributeIndex:
    def test_normalized_keys(self, figure1_lake):
        index = value_attribute_index(figure1_lake)
        assert "JAGUAR" in index
        assert index["JAGUAR"] == {"T1.At Risk", "T2.name", "T3.C2", "T4.Name"}

    def test_single_attribute_values(self, figure1_lake):
        index = value_attribute_index(figure1_lake)
        assert index["GOOGLE"] == {"T1.Donor"}

    def test_unnormalized_mode(self, figure1_lake):
        index = value_attribute_index(figure1_lake, normalize=False)
        assert "Jaguar" in index
        assert "JAGUAR" not in index


class TestValueCardinalities:
    def test_figure1_jaguar(self, figure1_lake):
        cards = value_cardinalities(figure1_lake)
        # N(JAGUAR) = union of 4 columns minus itself = 7 (see DESIGN.md)
        assert cards["JAGUAR"] == 7
        assert cards["PUMA"] == 5
        assert cards["PANDA"] == 4
        assert cards["TOYOTA"] == 4
        assert cards["LEMUR"] == 2

    def test_value_alone_in_column(self):
        lake = DataLake([Table("t", ["a"], [["x"]])])
        assert value_cardinalities(lake)["X"] == 0


class TestCardinalityRange:
    def test_range_formatting(self):
        cards = {"A": 3, "B": 10, "C": 7}
        assert cardinality_range(cards, {"A", "B"}) == "3-10"
        assert cardinality_range(cards, {"C"}) == "7"
        assert cardinality_range(cards, {"Z"}) == "N/A"
