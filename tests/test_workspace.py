"""The multi-lake Workspace: membership, one shared pool, per-lake exports.

The ISSUE-5 tentpole contract, in-process: a ``Workspace`` owns named
``HomographIndex`` members that all ride **one** persistent
``ProcessBackend`` — one pool's worth of worker processes for N lakes,
one shared-memory CSR export per lake, each invalidated independently
and all released on close.  Plus the stats()-snapshot atomicity fix.
"""

import multiprocessing
import os
import threading

import pytest

from repro import (
    DataLake,
    DuplicateLakeError,
    ExecutionConfig,
    HomographIndex,
    ProcessBackend,
    Table,
    UnknownLakeError,
    Workspace,
    WorkspaceError,
)
from tests.conftest import make_figure1_lake

PERSISTENT_2 = ExecutionConfig(backend="process", n_jobs=2, persistent=True)

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="shared-memory segment files only observable on /dev/shm",
)


def make_cars_lake() -> DataLake:
    """A second small lake with a different value universe."""
    return DataLake([
        Table.from_columns("makers", {
            "maker": ["Jaguar", "Toyota", "Fiat", "Jaguar"],
            "model": ["XE", "Prius", "500", "XJ"],
        }),
        Table.from_columns("dealers", {
            "city": ["Memphis", "Austin", "Memphis"],
            "brand": ["Toyota", "Fiat", "Jaguar"],
        }),
    ])


@pytest.fixture
def two_lakes():
    """A workspace with two serial lakes attached."""
    workspace = Workspace()
    workspace.attach("zoo", make_figure1_lake())
    workspace.attach("cars", make_cars_lake())
    yield workspace
    workspace.close()


class TestMembership:
    def test_attach_get_names_default(self, two_lakes):
        assert two_lakes.names() == ("zoo", "cars")
        assert two_lakes.default_name == "zoo"
        assert two_lakes.default_index() is two_lakes.get("zoo")
        assert len(two_lakes) == 2
        assert "cars" in two_lakes and "nope" not in two_lakes
        assert list(two_lakes) == ["zoo", "cars"]

    def test_attach_from_directory(self, tmp_path):
        (tmp_path / "zoo.csv").write_text(
            "animal,city\nJaguar,Memphis\nJaguar,Boston\n"
        )
        with Workspace() as workspace:
            index = workspace.attach("disk", tmp_path)
            assert len(index.lake) == 1
            assert workspace.get("disk") is index

    def test_duplicate_name_rejected(self, two_lakes):
        with pytest.raises(DuplicateLakeError):
            two_lakes.attach("zoo", make_cars_lake())
        # The failed attach did not clobber the original index.
        assert len(two_lakes.get("zoo").lake) == 4

    @pytest.mark.parametrize("name", [
        "", "-lead", "has space", "slash/й", "a" * 65, 7, "дом",
        "zoo\n", "zoo\ntrailing",
    ])
    def test_invalid_names_rejected(self, name):
        with Workspace() as workspace:
            with pytest.raises(ValueError):
                workspace.attach(name, make_figure1_lake())

    def test_unknown_lake_raises(self, two_lakes):
        with pytest.raises(UnknownLakeError):
            two_lakes.get("nope")
        with pytest.raises(UnknownLakeError):
            two_lakes.detach("nope")

    def test_detach_closes_only_that_index(self, two_lakes):
        zoo = two_lakes.get("zoo")
        detached = two_lakes.detach("zoo")
        assert detached is zoo and zoo.closed
        assert two_lakes.names() == ("cars",)
        assert two_lakes.default_name == "cars"
        # The sibling keeps serving.
        assert two_lakes.get("cars").detect(measure="lcc").scores

    def test_closed_workspace_rejects_attach(self):
        workspace = Workspace()
        workspace.attach("zoo", make_figure1_lake())
        workspace.close()
        assert workspace.closed
        with pytest.raises(WorkspaceError):
            workspace.attach("more", make_cars_lake())
        workspace.close()  # idempotent

    def test_per_lake_prune_override(self):
        with Workspace(prune_candidates=True) as workspace:
            pruned = workspace.attach("pruned", make_figure1_lake())
            full = workspace.attach(
                "full", make_figure1_lake(), prune_candidates=False
            )
            assert pruned.prune_candidates and not full.prune_candidates
            assert full.graph.num_values > pruned.graph.num_values


class TestSharedPool:
    def test_one_backend_instance_across_indexes(self):
        with Workspace(execution=PERSISTENT_2) as workspace:
            zoo = workspace.attach("zoo", make_figure1_lake())
            cars = workspace.attach("cars", make_cars_lake())
            zoo.detect(measure="lcc")
            cars.detect(measure="lcc")
            backend = workspace.backend
            assert isinstance(backend, ProcessBackend)
            assert zoo._backend is backend
            assert cars._backend is backend

    def test_two_lakes_one_pools_worth_of_workers(self):
        # The acceptance check: N lakes must not mean N pools.
        before = len(multiprocessing.active_children())
        workspace = Workspace(execution=PERSISTENT_2)
        zoo = workspace.attach("zoo", make_figure1_lake())
        cars = workspace.attach("cars", make_cars_lake())
        zoo_scores = zoo.detect(measure="betweenness").scores
        cars_scores = cars.detect(measure="betweenness").scores
        assert zoo_scores and cars_scores
        workers = len(multiprocessing.active_children()) - before
        assert workers == PERSISTENT_2.n_jobs  # exactly one pool
        workspace.close()
        assert len(multiprocessing.active_children()) - before == 0

    def test_per_lake_exports_coexist(self):
        with Workspace(execution=PERSISTENT_2) as workspace:
            zoo = workspace.attach("zoo", make_figure1_lake())
            cars = workspace.attach("cars", make_cars_lake())
            zoo.detect(measure="lcc")
            cars.detect(measure="lcc")
            backend = workspace.backend
            zoo_names = set(backend.export_names_for(zoo.graph))
            cars_names = set(backend.export_names_for(cars.graph))
            assert len(zoo_names) == 2 and len(cars_names) == 2
            assert not zoo_names & cars_names
            assert set(backend.export_names) == zoo_names | cars_names

    def test_mutation_drops_only_own_export(self):
        with Workspace(execution=PERSISTENT_2) as workspace:
            zoo = workspace.attach("zoo", make_figure1_lake())
            cars = workspace.attach("cars", make_cars_lake())
            zoo.detect(measure="lcc")
            cars.detect(measure="lcc")
            backend = workspace.backend
            zoo_names = set(backend.export_names_for(zoo.graph))
            cars_names = set(backend.export_names_for(cars.graph))
            zoo.add_table(
                Table.from_columns("T9", {"X": ["Lion", "Lion"]})
            )
            remaining = set(backend.export_names)
            # zoo's old export is gone, cars' untouched; the delta
            # splice may have published the *new* zoo graph's export
            # while patching scores through the shared pool.
            assert not remaining & zoo_names
            assert cars_names <= remaining
            assert remaining - cars_names <= \
                set(backend.export_names_for(zoo.graph))
            # ... and the pool survived for both lakes.
            assert backend.pool_alive
            assert zoo.detect(measure="lcc").scores
            assert cars.detect(measure="lcc", ).cached

    def test_member_close_leaves_shared_backend_running(self):
        with Workspace(execution=PERSISTENT_2) as workspace:
            zoo = workspace.attach("zoo", make_figure1_lake())
            cars = workspace.attach("cars", make_cars_lake())
            zoo.detect(measure="lcc")
            cars.detect(measure="lcc")
            backend = workspace.backend
            workspace.detach("zoo")
            assert backend.pool_alive  # member close is not pool close
            assert set(backend.export_names) == \
                set(backend.export_names_for(cars.graph))
            assert cars.detect(measure="betweenness").scores

    @needs_dev_shm
    def test_close_releases_every_lakes_segments(self):
        before = set(os.listdir("/dev/shm"))
        workspace = Workspace(execution=PERSISTENT_2)
        zoo = workspace.attach("zoo", make_figure1_lake())
        cars = workspace.attach("cars", make_cars_lake())
        zoo.detect(measure="lcc")
        cars.detect(measure="lcc")
        live = set(os.listdir("/dev/shm")) - before
        assert len(live) == 4  # two lakes x (indptr, indices)
        workspace.close()
        assert set(os.listdir("/dev/shm")) - before == set()

    def test_workspace_scores_match_standalone(self):
        standalone = HomographIndex(make_figure1_lake())
        expected = standalone.detect(measure="betweenness").scores
        with Workspace(execution=PERSISTENT_2) as workspace:
            zoo = workspace.attach("zoo", make_figure1_lake())
            got = zoo.detect(measure="betweenness").scores
        for value, score in expected.items():
            assert got[value] == pytest.approx(score, abs=1e-12)
        standalone.close()

    def test_serial_workspace_has_no_backend(self, two_lakes):
        two_lakes.get("zoo").detect(measure="lcc")
        assert two_lakes.backend is None


class TestWorkspaceStats:
    def test_stats_shape(self, two_lakes):
        two_lakes.get("zoo").detect(measure="lcc")
        stats = two_lakes.stats()
        assert set(stats["lakes"]) == {"zoo", "cars"}
        assert stats["default_lake"] == "zoo"
        assert stats["closed"] is False
        assert stats["pool"] == {"configured": False}
        assert stats["lakes"]["zoo"]["cache"]["misses"] == 1

    def test_stats_reports_shared_pool(self):
        with Workspace(execution=PERSISTENT_2) as workspace:
            zoo = workspace.attach("zoo", make_figure1_lake())
            zoo.detect(measure="lcc")
            stats = workspace.stats()
            assert stats["pool"]["alive"] is True
            assert stats["pool"]["jobs"] == 2
            assert stats["pool"]["persistent"] is True
            assert stats["pool"]["segments"] == 2
            member_pool = stats["lakes"]["zoo"]["pool"]
            assert member_pool["shared"] is True
            assert member_pool["segments"] == 2


class TestStatsSnapshotAtomicity:
    def test_stats_never_tears_across_a_mutation(self):
        # Regression for the ISSUE-5 satellite: every add_table bumps
        # the generation and the table count together under one lock,
        # so any stats() snapshot must satisfy
        #   tables - base_tables == generation - base_generation.
        # A torn (unlocked) read pairs a new table count with an old
        # generation (or vice versa) and breaks the invariant.
        index = HomographIndex(make_figure1_lake())
        base_tables = len(index.lake)
        violations = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                snapshot = index.stats()
                delta_tables = snapshot["tables"] - base_tables
                if delta_tables != snapshot["generation"]:
                    violations.append(snapshot)  # pragma: no cover

        readers = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in readers:
            thread.start()
        for step in range(200):
            index.add_table(Table.from_columns(
                f"extra_{step}", {"c": ["v1", "v2"]}
            ))
        stop.set()
        for thread in readers:
            thread.join(10)
        assert not violations
        index.close()


class TestLakeQuotas:
    """The per-lake admission-quota registry riding the membership."""

    def test_attach_stores_and_detach_clears_quota(self):
        with Workspace() as workspace:
            workspace.attach("zoo", make_figure1_lake(), quota=3)
            workspace.attach("cars", make_cars_lake())
            assert workspace.quota("zoo") == 3
            assert workspace.quota("cars") is None     # no override
            assert workspace.quota("ghost") is None    # unknown: None
            workspace.detach("zoo")
            workspace.attach("zoo", make_figure1_lake())
            # A re-attached lake does not inherit the old override.
            assert workspace.quota("zoo") is None

    def test_set_quota_updates_and_clears(self):
        with Workspace() as workspace:
            workspace.attach("zoo", make_figure1_lake())
            workspace.set_quota("zoo", 2)
            assert workspace.quota("zoo") == 2
            workspace.set_quota("zoo", None)
            assert workspace.quota("zoo") is None

    def test_set_quota_rejects_unknown_lake(self):
        with Workspace() as workspace:
            with pytest.raises(UnknownLakeError):
                workspace.set_quota("ghost", 1)

    @pytest.mark.parametrize("quota", [0, -1, 1.5, "two", True])
    def test_invalid_quotas_are_rejected_up_front(self, quota):
        with Workspace() as workspace:
            with pytest.raises(ValueError):
                workspace.attach("zoo", make_figure1_lake(), quota=quota)
            # The failed attach left no membership behind.
            assert "zoo" not in workspace.names()
            workspace.attach("zoo", make_figure1_lake())
            with pytest.raises(ValueError):
                workspace.set_quota("zoo", quota)
            assert workspace.quota("zoo") is None

    def test_stats_report_explicit_overrides_only(self):
        with Workspace() as workspace:
            workspace.attach("zoo", make_figure1_lake(), quota=4)
            workspace.attach("cars", make_cars_lake())
            assert workspace.stats()["quotas"] == {"zoo": 4}
