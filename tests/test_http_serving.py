"""End-to-end HTTP serving: concurrency, pagination, mutation, drain.

The ISSUE-4 contract, proven over a real socket: N concurrent
identical ``POST /detect`` requests cost exactly one kernel
computation (single-flight observed through ``CacheInfo.coalesced``);
a paginated ``GET /ranking`` traversal equals the unpaginated ranking
byte for byte with no duplicates or gaps; lake mutation during an
in-flight detect serves stale-but-consistent results without
poisoning the cache; and shutdown mid-request drains cleanly —
responses delivered, worker pool gone, no ``/dev/shm`` segments left.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import (
    DataLake,
    ExecutionConfig,
    HomographClient,
    HomographIndex,
    MeasureOutput,
    ServiceError,
    Table,
    register_measure,
    start_server,
    unregister_measure,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

PERSISTENT_2 = ExecutionConfig(backend="process", n_jobs=2, persistent=True)

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="shared-memory segment files only observable on /dev/shm",
)


@pytest.fixture
def http_stack(figure1_lake):
    """A served index on an ephemeral port plus a ready client."""
    index = HomographIndex(figure1_lake)
    server = start_server(index, port=0)
    client = HomographClient(server.url, timeout=30.0)
    client.wait_ready()
    yield server, client, index
    server.drain()


@pytest.fixture
def slow_measure():
    """A registered measure that blocks until released, counting runs."""
    state = {
        "calls": 0,
        "started": threading.Event(),
        "release": threading.Event(),
    }

    def measure(graph, request):
        state["calls"] += 1
        state["started"].set()
        state["release"].wait(10)
        return MeasureOutput(
            scores={graph.value_name(v): float(v)
                    for v in range(graph.num_values)},
            descending=True,
        )

    register_measure("slow-http-test", measure)
    yield state
    unregister_measure("slow-http-test")


class TestConcurrentDetect:
    def test_eight_identical_requests_compute_once(
        self, http_stack, slow_measure
    ):
        server, client, index = http_stack
        index.graph  # pre-build so threads contend only on scoring
        responses = []
        errors = []

        def call():
            try:
                responses.append(client.detect(measure="slow-http-test"))
            except Exception as error:  # noqa: BLE001 - collected
                errors.append(error)

        threads = [threading.Thread(target=call) for _ in range(8)]
        for t in threads:
            t.start()
        assert slow_measure["started"].wait(10)
        # Give the other connections time to reach the flight table.
        time.sleep(0.2)
        slow_measure["release"].set()
        for t in threads:
            t.join(30)

        assert not errors
        assert len(responses) == 8
        # Exactly one kernel computation happened for 8 HTTP requests.
        assert slow_measure["calls"] == 1
        info = index.cache_info()
        assert info.misses == 1
        assert info.coalesced + info.hits == 7
        reference = responses[0].scores
        assert all(r.scores == reference for r in responses)
        # Exactly one response was the computing leader.
        assert sum(not r.cached for r in responses) == 1

    def test_stats_reports_http_and_cache_counters(self, http_stack):
        server, client, index = http_stack
        client.detect(measure="lcc")
        client.detect(measure="lcc")
        stats = client.stats()
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["hits"] >= 1
        assert stats["http"]["served"] >= 2
        assert stats["http"]["rejected"] == 0
        assert stats["http"]["max_concurrent"] >= 1
        assert stats["pool"] == {"configured": False}
        assert stats["closed"] is False


class TestRankingPagination:
    def test_paged_traversal_equals_unpaginated_byte_for_byte(
        self, http_stack
    ):
        server, client, index = http_stack
        full = client._request(
            "POST", "/detect",
            payload={"measure": "betweenness"},
        )["ranking"]
        assert len(full) > 3  # the walk below must need several pages

        paged = []
        cursor = None
        pages = 0
        while True:
            page = client.ranking_page(
                "betweenness", cursor=cursor, limit=2
            )
            paged.extend(page["entries"])
            pages += 1
            cursor = page["next_cursor"]
            if cursor is None:
                break

        assert pages > 1
        assert json.dumps(paged, sort_keys=True).encode() == \
            json.dumps(full, sort_keys=True).encode()
        # No duplicates, no gaps: ranks are exactly 1..N.
        assert [e["rank"] for e in paged] == \
            list(range(1, len(full) + 1))

    def test_iter_ranking_matches_detect(self, http_stack):
        server, client, index = http_stack
        response = client.detect(measure="lcc")
        walked = list(client.iter_ranking("lcc", limit=3))
        assert walked == list(response.ranking)

    def test_page_totals_and_cached_flag(self, http_stack):
        server, client, index = http_stack
        first = client.ranking_page("betweenness", limit=2)
        again = client.ranking_page("betweenness", limit=2)
        assert first["total"] == again["total"] > 2
        assert len(first["entries"]) == 2
        # The second page request was served from the score cache —
        # pagination never recomputes.
        assert again["cached"] is True
        assert index.cache_info().misses == 1


class TestMutationDuringDetect:
    def test_inflight_detect_serves_stale_but_consistent(
        self, http_stack, slow_measure
    ):
        server, client, index = http_stack
        old_values = set(index.graph.value_names)
        result = {}

        def call():
            result["response"] = client.detect(measure="slow-http-test")

        worker = threading.Thread(target=call)
        worker.start()
        assert slow_measure["started"].wait(10)
        # Mutate the lake while the detect is mid-kernel.
        client.add_table(
            Table.from_columns("T9", {"X": ["Jaguar", "Lion", "Lion"]})
        )
        slow_measure["release"].set()
        worker.join(30)

        # The in-flight response answered against the old graph —
        # stale, but internally consistent.
        assert set(result["response"].scores) == old_values
        # ... and was never cached: the next detect recomputes on the
        # mutated lake.
        assert index.cache_info().size == 0
        slow_measure["release"].set()
        fresh = client.detect(measure="slow-http-test")
        assert slow_measure["calls"] == 2
        assert "LION" in fresh.scores

    def test_add_and_remove_table_roundtrip(self, http_stack):
        server, client, index = http_stack
        before = client.healthz()["tables"]
        added = client.add_table(
            Table.from_columns("extra", {"X": ["Lion", "Lion"]})
        )
        assert added["tables"] == before + 1
        removed = client.remove_table("extra")
        assert removed["tables"] == before
        assert "extra" not in index.lake


class TestDrain:
    def test_drain_mid_request_delivers_response(
        self, figure1_lake, slow_measure
    ):
        index = HomographIndex(figure1_lake)
        server = start_server(index, port=0)
        client = HomographClient(server.url, timeout=30.0)
        client.wait_ready()
        result = {}

        def call():
            result["response"] = client.detect(measure="slow-http-test")

        worker = threading.Thread(target=call)
        worker.start()
        assert slow_measure["started"].wait(10)

        drained = threading.Event()

        def drain_it():
            server.drain()
            drained.set()

        drainer = threading.Thread(target=drain_it)
        drainer.start()
        time.sleep(0.2)
        # The drain must wait for the in-flight request, not cut it.
        assert not drained.is_set()
        slow_measure["release"].set()
        worker.join(30)
        drainer.join(30)
        assert drained.is_set()
        assert index.closed
        # The in-flight request got its full 200 response.
        assert result["response"].scores
        # The service is gone: new connections are refused.
        with pytest.raises((ConnectionError, OSError, TimeoutError)):
            client.wait_ready(timeout=0.5)

    @needs_dev_shm
    def test_drain_releases_worker_pool_and_segments(self, figure1_lake):
        before = set(os.listdir("/dev/shm"))
        index = HomographIndex(
            figure1_lake, prune_candidates=False, execution=PERSISTENT_2
        )
        server = start_server(index, port=0)
        client = HomographClient(server.url, timeout=60.0)
        client.wait_ready()
        response = client.detect(measure="betweenness")
        assert response.scores
        backend = index._backend
        assert backend.pool_alive
        assert set(os.listdir("/dev/shm")) - before  # export is live
        server.drain()
        assert not backend.pool_alive
        assert set(os.listdir("/dev/shm")) - before == set()

    def test_drain_is_idempotent(self, http_stack):
        server, client, index = http_stack
        server.drain()
        server.drain()
        assert index.closed

    def test_closed_index_rejects_detect_with_409(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        server = start_server(index, port=0)
        client = HomographClient(server.url, timeout=30.0)
        client.wait_ready()
        try:
            index.close()  # index gone, socket still accepting
            with pytest.raises(ServiceError) as info:
                client.detect(measure="lcc")
            assert info.value.status == 409
            assert info.value.code == "index-closed"
            with pytest.raises(ServiceError) as info:
                client.healthz()
            assert info.value.status == 503
        finally:
            server.drain()


class TestServeCLI:
    def test_serve_drains_on_sigint(self, tmp_path):
        (tmp_path / "zoo.csv").write_text(
            "animal,city\nJaguar,Memphis\nPanda,Atlanta\nJaguar,Boston\n"
        )
        (tmp_path / "cars.csv").write_text(
            "maker,model\nJaguar,XE\nToyota,Prius\nJaguar,XJ\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(tmp_path),
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, cwd=str(REPO_ROOT),
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            assert match, f"no address in banner: {banner!r}"
            client = HomographClient(
                f"http://127.0.0.1:{match.group(1)}", timeout=30.0
            )
            client.wait_ready()
            response = client.detect(measure="betweenness")
            assert "JAGUAR" in response.scores
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        assert "draining" in out


class TestKeepAliveClient:
    """The PR-8 client transport: one socket, stale-retry, 503 retry."""

    def test_keep_alive_reuses_one_connection(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        server = start_server(index, port=0)
        try:
            with HomographClient(
                server.url, timeout=30.0, keep_alive=True
            ) as client:
                for _ in range(5):
                    client.detect(measure="lcc")
                    client.healthz()
                # Ten requests, zero keep-alive races: the single
                # persistent connection carried them all.
                assert client._transport.reconnects == 0
        finally:
            server.drain()

    def test_lake_handles_share_the_parent_transport(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        server = start_server(index, port=0)
        try:
            with HomographClient(
                server.url, timeout=30.0, keep_alive=True
            ) as client:
                handle = client.lake("default")
                assert handle._transport is client._transport
                handle.detect(measure="lcc")
                client.detect(measure="lcc")
                assert client._transport.reconnects == 0
        finally:
            server.drain()

    def test_stale_connection_is_retried_transparently(self, figure1_lake):
        # The server hangs up idle keep-alive connections after its
        # request timeout; the next call must redial and succeed, not
        # surface the keep-alive race to the caller.
        index = HomographIndex(figure1_lake)
        server = start_server(index, port=0, request_timeout=0.5)
        try:
            with HomographClient(
                server.url, timeout=30.0, keep_alive=True
            ) as client:
                first = client.detect(measure="lcc")
                time.sleep(1.2)          # idle past the server fuse
                second = client.detect(measure="lcc")
                assert [e.value for e in second.ranking] == \
                    [e.value for e in first.ranking]
                assert client._transport.reconnects <= 1
        finally:
            server.drain()

    def test_retry_overloaded_waits_out_a_busy_gate(self, figure1_lake):
        release = threading.Event()

        def slow(graph, request):
            release.wait(10)
            return MeasureOutput(scores={"X": 1.0}, descending=True)

        register_measure("slow-for-retry-test", slow)
        index = HomographIndex(figure1_lake)
        server = start_server(index, port=0, max_concurrent=1)
        try:
            occupant = threading.Thread(
                target=lambda: HomographClient(
                    server.url, timeout=30.0
                ).detect(measure="slow-for-retry-test"),
            )
            occupant.start()
            deadline = time.monotonic() + 10
            with HomographClient(server.url, timeout=30.0) as probe:
                while time.monotonic() < deadline:
                    if probe.stats()["http"]["in_flight"] == 1:
                        break
                    time.sleep(0.02)
            threading.Timer(0.5, release.set).start()
            # Without retries the 503 surfaces; with them the client
            # sleeps through the busy window and succeeds.
            with pytest.raises(ServiceError) as info:
                HomographClient(server.url, timeout=30.0).detect(
                    measure="lcc"
                )
            assert info.value.overloaded
            assert info.value.scope == "global"
            patient = HomographClient(
                server.url, timeout=30.0,
                retry_overloaded=50, retry_backoff=0.1,
            )
            response = patient.detect(measure="lcc")
            assert response.measure == "lcc"
            occupant.join(30)
        finally:
            release.set()
            server.drain()
            unregister_measure("slow-for-retry-test")

    def test_lake_scoped_rejection_parses_lake_and_scope(self):
        error = ServiceError(
            503, "lake-over-capacity", "lake 'tus' is at its quota",
            retry_after=3, lake="tus",
        )
        assert error.overloaded and error.scope == "lake"
        assert error.lake == "tus" and error.retry_after == 3
        global_error = ServiceError(503, "over-capacity", "busy")
        assert global_error.overloaded
        assert global_error.scope == "global"
        plain = ServiceError(404, "unknown-lake", "nope")
        assert not plain.overloaded and plain.scope is None
