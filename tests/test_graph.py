"""Unit tests for repro.core.graph (BipartiteGraph)."""

import numpy as np
import pytest

from repro.core.graph import BipartiteGraph, GraphError


@pytest.fixture
def small_graph():
    # values: a,b,c,d ; attributes: A1 (a,b,c), A2 (c,d)
    return BipartiteGraph(
        ["a", "b", "c", "d"],
        ["A1", "A2"],
        [(0, 0), (1, 0), (2, 0), (2, 1), (3, 1)],
    )


class TestConstruction:
    def test_sizes(self, small_graph):
        assert small_graph.num_values == 4
        assert small_graph.num_attributes == 2
        assert small_graph.num_nodes == 6
        assert small_graph.num_edges == 5

    def test_duplicate_edges_collapse(self):
        g = BipartiteGraph(["a"], ["A"], [(0, 0), (0, 0), (0, 0)])
        assert g.num_edges == 1

    def test_empty_graph(self):
        g = BipartiteGraph([], [], [])
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_no_edges(self):
        g = BipartiteGraph(["a"], ["A"], [])
        assert g.degree(0) == 0
        assert g.value_neighbors(0).size == 0

    def test_value_id_out_of_range(self):
        with pytest.raises(GraphError):
            BipartiteGraph(["a"], ["A"], [(1, 0)])

    def test_attribute_id_out_of_range(self):
        with pytest.raises(GraphError):
            BipartiteGraph(["a"], ["A"], [(0, 5)])

    def test_duplicate_value_names_rejected(self):
        with pytest.raises(GraphError):
            BipartiteGraph(["a", "a"], ["A"], [])

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(GraphError):
            BipartiteGraph(["a"], ["A", "A"], [])


class TestIdSpaces:
    def test_partition(self, small_graph):
        assert small_graph.is_value_node(0)
        assert small_graph.is_value_node(3)
        assert not small_graph.is_value_node(4)
        assert small_graph.is_attribute_node(4)
        assert small_graph.is_attribute_node(5)
        assert not small_graph.is_attribute_node(6)

    def test_name_lookup(self, small_graph):
        assert small_graph.value_name(2) == "c"
        assert small_graph.attribute_name(5) == "A2"
        assert small_graph.value_id("d") == 3
        assert small_graph.attribute_id("A1") == 4

    def test_name_lookup_errors(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.value_name(4)  # attribute id
        with pytest.raises(GraphError):
            small_graph.attribute_name(0)  # value id
        with pytest.raises(GraphError):
            small_graph.value_id("nope")
        with pytest.raises(GraphError):
            small_graph.attribute_id("nope")

    def test_has_value(self, small_graph):
        assert small_graph.has_value("a")
        assert not small_graph.has_value("zz")


class TestTopology:
    def test_degrees(self, small_graph):
        assert small_graph.degree(2) == 2  # c in both attributes
        assert small_graph.degree(0) == 1
        assert small_graph.degree(4) == 3  # A1 holds a,b,c
        np.testing.assert_array_equal(
            small_graph.degrees(), [1, 1, 2, 1, 3, 2]
        )

    def test_neighbors_sorted(self, small_graph):
        nbrs = small_graph.neighbors(4)
        assert list(nbrs) == sorted(nbrs)

    def test_value_attributes(self, small_graph):
        assert list(small_graph.value_attributes(2)) == [4, 5]
        with pytest.raises(GraphError):
            small_graph.value_attributes(4)

    def test_attribute_values(self, small_graph):
        assert list(small_graph.attribute_values(4)) == [0, 1, 2]
        with pytest.raises(GraphError):
            small_graph.attribute_values(0)

    def test_value_neighbors_excludes_self(self, small_graph):
        # N(c) = {a, b} from A1 plus {d} from A2
        assert list(small_graph.value_neighbors(2)) == [0, 1, 3]
        assert small_graph.value_cardinality(2) == 3

    def test_value_neighbors_single_attribute(self, small_graph):
        assert list(small_graph.value_neighbors(0)) == [1, 2]


class TestPruning:
    def test_prune_keeps_multi_attribute_values(self, small_graph):
        pruned = small_graph.prune_values(min_degree=2)
        assert pruned.value_names == ["c"]
        assert pruned.num_attributes == 2  # attribute nodes survive
        assert pruned.num_edges == 2

    def test_prune_noop_at_degree_one(self, small_graph):
        pruned = small_graph.prune_values(min_degree=1)
        assert pruned.num_values == small_graph.num_values
        assert pruned.num_edges == small_graph.num_edges

    def test_subgraph_from_values(self, small_graph):
        sub = small_graph.subgraph_from_values([0, 2])
        assert sorted(sub.value_names) == ["a", "c"]
        assert sub.num_edges == 3  # a-A1, c-A1, c-A2


class TestSubgraphFromAttributes:
    def test_pulls_in_attribute_values(self, small_graph):
        sub = small_graph.subgraph_from_attributes([5])  # A2
        assert sorted(sub.value_names) == ["c", "d"]
        assert sub.attribute_names == ["A2"]
        assert sub.num_edges == 2

    def test_rejects_value_node(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.subgraph_from_attributes([0])


class TestComponentsAndInterop:
    def test_connected_components(self):
        g = BipartiteGraph(
            ["a", "b", "x", "y"],
            ["A", "B"],
            [(0, 0), (1, 0), (2, 1), (3, 1)],
        )
        comps = g.connected_components()
        assert len(comps) == 2
        sizes = sorted(len(c) for c in comps)
        assert sizes == [3, 3]

    def test_single_component_when_bridged(self, small_graph):
        comps = small_graph.connected_components()
        assert len(comps) == 1
        assert len(comps[0]) == 6

    def test_to_networkx_roundtrip(self, small_graph):
        nxg = small_graph.to_networkx()
        assert nxg.number_of_nodes() == 6
        assert nxg.number_of_edges() == 5
        assert nxg.has_edge(("val", "c"), ("attr", "A2"))
