"""Edge cases and failure-injection tests for the detection pipeline."""

import numpy as np
import pytest

from repro import DataLake, DomainNet, Table
from repro.core.betweenness import betweenness_scores
from repro.core.builder import build_graph
from repro.core.lcc import lcc_scores


class TestDegenerateLakes:
    def test_empty_lake(self):
        detector = DomainNet.from_lake(DataLake())
        result = detector.detect()
        assert len(result.ranking) == 0

    def test_lake_of_empty_tables(self):
        lake = DataLake([Table("t", ["a", "b"], [])])
        detector = DomainNet.from_lake(lake)
        assert detector.graph.num_values == 0
        assert len(detector.detect().ranking) == 0

    def test_all_blank_cells(self):
        lake = DataLake([Table("t", ["a"], [[""], [""], [""]])])
        detector = DomainNet.from_lake(lake)
        assert detector.graph.num_values == 0

    def test_single_column_lake_has_no_homographs(self):
        lake = DataLake([
            Table.from_columns("t", {"a": ["x", "y", "x", "z"]})
        ])
        detector = DomainNet.from_lake(lake)
        result = detector.detect()
        # "x" survives occurrence pruning but has no bridging role.
        assert all(e.score == 0.0 for e in result.ranking)

    def test_identical_duplicate_tables(self):
        base = {"a": ["x", "y", "z"]}
        lake = DataLake([
            Table.from_columns("t1", base),
            Table.from_columns("t2", base),
        ])
        detector = DomainNet.from_lake(lake)
        result = detector.detect()
        # Perfectly unionable duplicates: nothing bridges anything.
        scores = np.array([e.score for e in result.ranking])
        assert np.allclose(scores, scores[0])


class TestAdversarialValues:
    def test_whitespace_variants_collapse(self):
        lake = DataLake([
            Table.from_columns("t1", {"a": [" Jaguar ", "x"]}),
            Table.from_columns("t2", {"b": ["JAGUAR", "y"]}),
        ])
        graph = build_graph(lake)
        assert graph.degree(graph.value_id("JAGUAR")) == 2

    def test_values_resembling_injection_tokens(self):
        lake = DataLake([
            Table.from_columns("t1", {"a": ["InjectedHomograph1", "x"]}),
            Table.from_columns("t2", {"b": ["InjectedHomograph1", "y"]}),
        ])
        detector = DomainNet.from_lake(lake)
        result = detector.detect()
        assert "INJECTEDHOMOGRAPH1" in result.scores

    def test_very_long_values(self):
        long_value = "A" * 10_000
        lake = DataLake([
            Table.from_columns("t1", {"a": [long_value, "x"]}),
            Table.from_columns("t2", {"b": [long_value, "y"]}),
        ])
        graph = build_graph(lake)
        assert graph.has_value(long_value)

    def test_huge_attribute_count_single_value(self):
        # One value spread over 60 attributes: star topology.
        lake = DataLake([
            Table.from_columns(f"t{i}", {"c": ["hub", f"leaf{i}"]})
            for i in range(60)
        ])
        detector = DomainNet.from_lake(lake)
        result = detector.detect()
        assert result.ranking.values[0] == "HUB"


class TestNumericalStability:
    def test_bc_on_large_star_is_finite(self):
        columns = {"A": [f"v{i}" for i in range(2000)]}
        from repro.core.builder import build_graph_from_columns

        graph = build_graph_from_columns(columns)
        scores = betweenness_scores(graph)
        assert np.all(np.isfinite(scores))

    def test_lcc_on_large_star_is_finite(self):
        from repro.core.builder import build_graph_from_columns

        graph = build_graph_from_columns(
            {"A": [f"v{i}" for i in range(2000)]}
        )
        scores = lcc_scores(graph)
        assert np.all(np.isfinite(scores))
        np.testing.assert_allclose(scores, 1.0)

    def test_sampled_bc_extreme_small_sample(self, figure1_lake):
        graph = build_graph(figure1_lake)
        scores = betweenness_scores(graph, sample_size=1, seed=0)
        assert np.all(np.isfinite(scores))
        assert np.all(scores >= 0.0)


class TestPruningStability:
    """DESIGN.md §6 item 4: pruning shrinks the graph without
    displacing the strong homograph signal at the head of the ranking.
    """

    def test_top_candidates_stable_under_pruning(self):
        from repro.bench.synthetic import SBConfig, generate_sb

        sb = generate_sb(SBConfig(rows=300, seed=4))
        pruned = DomainNet.from_lake(sb.lake, prune_candidates=True)
        full = DomainNet.from_lake(sb.lake, prune_candidates=False)
        assert pruned.graph.num_values < full.graph.num_values

        top_pruned = pruned.detect().top_values(15)
        top_full = full.detect().top_values(15)
        overlap = len(set(top_pruned) & set(top_full))
        assert overlap >= 10

    def test_pruning_never_drops_multi_attribute_values(self, figure1_lake):
        pruned = DomainNet.from_lake(figure1_lake).graph
        full = DomainNet.from_lake(
            figure1_lake, prune_candidates=False
        ).graph
        multi = [
            full.value_name(v)
            for v in range(full.num_values)
            if full.degree(v) >= 2
        ]
        for name in multi:
            assert pruned.has_value(name)
