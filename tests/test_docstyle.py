"""Docstring conventions stay enforced on the documented packages.

``tools/check_docstyle.py`` is the stdlib stand-in for the
``pydocstyle`` / ``ruff D`` rules (the container cannot install
either); running it from the tier-1 suite means a public definition
cannot land in ``repro.api`` / ``repro.perf`` / ``repro.serving``
without a docstring that matches ``docs/api.md`` conventions.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docstyle", REPO_ROOT / "tools" / "check_docstyle.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_public_packages_pass_docstyle():
    checker = _load_checker()
    violations = checker.check_paths(checker.CHECKED_PACKAGES)
    formatted = "\n".join(
        f"{rel}:{line}: {code} {message}"
        for rel, line, code, message in violations
    )
    assert not violations, f"docstring violations:\n{formatted}"


def test_checker_flags_missing_and_malformed(tmp_path):
    # The checker itself must catch what it claims to catch.
    sample = tmp_path / "sample.py"
    sample.write_text(
        '"""Module."""\n'
        "def documented():\n"
        '    """Fine."""\n'
        "def missing():\n"
        "    pass\n"
        "class Thing:\n"
        '    """Class."""\n'
        "    def method(self):\n"
        '        """no terminal punctuation"""\n'
    )
    checker = _load_checker()
    codes = sorted(code for _, _, code, _ in checker.check_file(sample))
    assert codes == ["D103", "D400"]
