"""Unit tests for repro.bench.ground_truth."""

import pytest

from repro import DataLake, Table
from repro.bench.ground_truth import label_lake, meanings_range


@pytest.fixture
def small_lake():
    return DataLake([
        Table.from_columns("t1", {"animals": ["Jaguar", "Panda"]}),
        Table.from_columns("t2", {"zoo": ["Jaguar", "Panda", "Lemur"]}),
        Table.from_columns("t3", {"cars": ["Jaguar", "Prius"]}),
    ])


GROUPS = {
    "t1.animals": "animal",
    "t2.zoo": "animal",
    "t3.cars": "car",
}


class TestLabelLake:
    def test_homograph_detected(self, small_lake):
        truth = label_lake(small_lake, GROUPS)
        assert truth.homographs == {"JAGUAR"}

    def test_same_group_repeat_not_homograph(self, small_lake):
        truth = label_lake(small_lake, GROUPS)
        assert "PANDA" not in truth.homographs
        assert truth.meanings["PANDA"] == 1

    def test_meanings_counts_groups(self, small_lake):
        truth = label_lake(small_lake, GROUPS)
        assert truth.meanings["JAGUAR"] == 2
        assert truth.meanings["LEMUR"] == 1

    def test_labels_mapping(self, small_lake):
        truth = label_lake(small_lake, GROUPS)
        labels = truth.labels()
        assert labels["JAGUAR"] is True
        assert labels["PRIUS"] is False
        assert set(labels) == set(truth.meanings)

    def test_missing_attribute_mapping_raises(self, small_lake):
        with pytest.raises(KeyError):
            label_lake(small_lake, {"t1.animals": "animal"})

    def test_is_homograph(self, small_lake):
        truth = label_lake(small_lake, GROUPS)
        assert truth.is_homograph("JAGUAR")
        assert not truth.is_homograph("PANDA")
        assert not truth.is_homograph("NOT_PRESENT")


class TestMeaningsRange:
    def test_range(self, small_lake):
        truth = label_lake(small_lake, GROUPS)
        assert meanings_range(truth) == (2, 2)

    def test_empty_homographs(self):
        lake = DataLake([Table.from_columns("t", {"a": ["x"]})])
        truth = label_lake(lake, {"t.a": "g"})
        assert meanings_range(truth) == (0, 0)
