"""Tests for the D4 pipeline (discovery + end-to-end)."""

import pytest

from repro import DataLake, Table
from repro.domains import run_d4
from repro.domains.d4 import D4Config
from repro.domains.discovery import (
    LocalDomain,
    expand_columns,
    local_domains,
    strong_domains,
)
from repro.domains.signatures import all_robust_signatures, build_term_index


def two_type_lake():
    """Animals and companies in two columns each, JAGUAR spanning both.

    The staggered column subsets plus the multi-column noise tokens
    (NA, X) create the spread of similarity levels real lakes have;
    with perfectly clean levels D4's trimming detaches homographs
    entirely (a failure mode covered by TestSBCalibration).
    """
    animals = [f"animal{i}" for i in range(8)]
    companies = [f"company{i}" for i in range(8)]
    return DataLake([
        Table.from_columns("zoo", {"animal": animals[:6] + ["Jaguar", "NA"]}),
        Table.from_columns("wild", {
            "species": animals[2:8] + ["Jaguar", "X"]
        }),
        Table.from_columns("corp", {
            "company": companies[:6] + ["Jaguar", "NA"]
        }),
        Table.from_columns("stocks", {
            "name": companies[2:8] + ["Jaguar", "X"]
        }),
        Table.from_columns("misc1", {"m": ["NA", "X", "noise1", "noise2"]}),
        Table.from_columns("misc2", {"m": ["NA", "X", "noise3", "noise4"]}),
    ])


class TestStrongDomains:
    def test_merges_heavily_overlapping(self):
        a = LocalDomain(0, {1, 2, 3, 4})
        b = LocalDomain(1, {1, 2, 3, 5})
        merged = strong_domains([a, b], overlap_threshold=0.5)
        assert len(merged) == 1
        assert merged[0].term_ids == {1, 2, 3, 4, 5}
        assert merged[0].column_ids == {0, 1}

    def test_does_not_absorb_small_cluster(self):
        mini = LocalDomain(0, {1, 2})
        big = LocalDomain(1, set(range(1, 30)))
        big2 = LocalDomain(2, set(range(1, 30)))
        merged = strong_domains([mini, big, big2], overlap_threshold=0.5)
        # mini has containment 2/29 in big: stays separate, then dies
        # on min_support (only one supporting column).
        assert len(merged) == 1
        assert merged[0].column_ids == {1, 2}

    def test_min_support(self):
        a = LocalDomain(0, {1, 2, 3})
        merged = strong_domains([a], min_support=1)
        assert len(merged) == 1
        merged = strong_domains([a], min_support=2)
        assert merged == []

    def test_min_size_drops_singletons(self):
        a = LocalDomain(0, {1})
        b = LocalDomain(1, {1})
        assert strong_domains([a, b], min_support=1) == []

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            strong_domains([], overlap_threshold=0.0)


class TestExpandColumns:
    def test_expansion_adds_missing_member(self):
        lake = two_type_lake()
        index = build_term_index(lake)
        signatures = all_robust_signatures(index, variant="liberal")
        expanded = expand_columns(index, signatures, threshold=0.5)
        # Expansion never removes terms and must grow at least one
        # column here (wild-only animals belong in zoo and vice versa).
        grown = 0
        for c in range(index.num_columns):
            original = set(int(t) for t in index.column_terms[c])
            assert original <= expanded[c]
            grown += len(expanded[c]) - len(original)
        assert grown > 0

    def test_expansion_respects_threshold(self):
        lake = two_type_lake()
        index = build_term_index(lake)
        signatures = all_robust_signatures(index, variant="liberal")
        expanded = expand_columns(index, signatures, threshold=1.0)
        original_sizes = [len(index.column_terms[c])
                          for c in range(index.num_columns)]
        # With threshold 1.0 very little (possibly nothing) expands.
        grown = sum(
            len(expanded[c]) - original_sizes[c]
            for c in range(index.num_columns)
        )
        assert grown <= 2

    def test_invalid_threshold(self):
        lake = two_type_lake()
        index = build_term_index(lake)
        with pytest.raises(ValueError):
            expand_columns(index, [], threshold=0.0)


class TestLocalDomains:
    def test_columns_cluster_by_type(self):
        lake = two_type_lake()
        index = build_term_index(lake)
        signatures = all_robust_signatures(index, variant="liberal")
        expanded = [
            set(int(t) for t in index.column_terms[c])
            for c in range(index.num_columns)
        ]
        locals_ = local_domains(index, signatures, expanded)
        # Every column must produce at least one local domain.
        assert {d.column_id for d in locals_} == set(range(6))


class TestRunD4:
    def test_discovers_two_type_domains(self):
        result = run_d4(two_type_lake())
        assert result.num_domains >= 2
        # The animal domain and company domain must not be merged.
        term_sets = [result.domain_terms(i) for i in range(result.num_domains)]
        has_animals = any("ANIMAL0" in s for s in term_sets)
        has_companies = any("COMPANY0" in s for s in term_sets)
        assert has_animals and has_companies
        assert not any(
            "ANIMAL0" in s and "COMPANY0" in s for s in term_sets
        )

    def test_homograph_in_two_domains(self):
        result = run_d4(two_type_lake())
        assert "JAGUAR" in result.predicted_homographs()

    def test_unambiguous_not_predicted(self):
        result = run_d4(two_type_lake())
        predicted = result.predicted_homographs()
        assert "ANIMAL0" not in predicted
        assert "COMPANY0" not in predicted

    def test_ranked_homographs_deterministic(self):
        a = run_d4(two_type_lake()).ranked_homographs()
        b = run_d4(two_type_lake()).ranked_homographs()
        assert a == b

    def test_domains_per_column_stats(self):
        result = run_d4(two_type_lake())
        counts = result.domains_per_column()
        assert set(counts) == set(result.index.columns)
        assert result.max_domains_per_column() >= 1
        assert 0 < result.avg_domains_per_column() <= result.max_domains_per_column()

    def test_numeric_columns_ignored(self):
        lake = two_type_lake()
        lake.add_table(Table.from_columns("nums", {
            "n": [str(i) for i in range(50)]
        }))
        result = run_d4(lake)
        assert "nums.n" not in result.index.columns

    def test_no_expansion_config(self):
        result = run_d4(two_type_lake(), D4Config(expand=False))
        assert result.num_domains >= 2


class TestSBCalibration:
    """The §5.1 baseline comparison, on a reduced SB for speed."""

    def test_d4_beats_zero_but_loses_to_domainnet(self):
        from repro import DomainNet
        from repro.bench.synthetic import SBConfig, generate_sb
        from repro.eval.metrics import precision_recall_at_k

        sb = generate_sb(SBConfig(rows=300, seed=0))
        d4 = run_d4(sb.lake)
        d4_pr = precision_recall_at_k(
            d4.ranked_homographs(), sb.homographs, 55
        )

        det = DomainNet.from_lake(sb.lake)
        bc = det.detect(measure="betweenness")
        bc_hits = sum(1 for v in bc.top_values(55) if v in sb.homographs)

        assert d4_pr.true_positives > 0
        # DomainNet's margin over D4 is the paper's headline (69 vs 38).
        assert bc_hits > d4_pr.true_positives
