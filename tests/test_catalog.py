"""Unit tests for repro.datalake.catalog."""

from repro.datalake.catalog import (
    LakeStatistics,
    compute_statistics,
    format_statistics_table,
)


class TestComputeStatistics:
    def test_without_ground_truth(self, figure1_lake):
        stats = compute_statistics(figure1_lake, "fig1")
        assert stats.num_tables == 4
        assert stats.num_attributes == 12
        assert stats.num_values == 37
        assert stats.num_homographs is None
        assert stats.as_row()["#Hom"] == "N/A"

    def test_with_ground_truth(self, figure1_lake, figure1_homographs):
        stats = compute_statistics(
            figure1_lake,
            "fig1",
            homographs=figure1_homographs,
            meanings={"JAGUAR": 2, "PUMA": 2},
        )
        assert stats.num_homographs == 2
        # Card(JAGUAR)=7, Card(PUMA)=5
        assert stats.homograph_cardinality_min == 5
        assert stats.homograph_cardinality_max == 7
        assert stats.meanings_min == 2
        assert stats.meanings_max == 2
        row = stats.as_row()
        assert row["Card(H)"] == "5-7"
        assert row["#M"] == "2"

    def test_unknown_homograph_ignored_in_cardinality(self, figure1_lake):
        stats = compute_statistics(
            figure1_lake, "fig1", homographs={"JAGUAR", "NOT_IN_LAKE"}
        )
        assert stats.num_homographs == 2
        assert stats.homograph_cardinality_min == 7
        assert stats.homograph_cardinality_max == 7


class TestFormatStatisticsTable:
    def test_header_and_alignment(self):
        rows = [
            LakeStatistics("SB", 13, 39, 17633, 55, 151, 1966, 2, 2),
            LakeStatistics("TUS-I", 1253, 5020, 163860),
        ]
        text = format_statistics_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("dataset")
        assert "SB" in lines[2]
        assert "151-1966" in lines[2]
        assert "N/A" in lines[3]
        # all rows align on the same column widths
        assert len(lines) == 4
