"""Property-based tests for the D4 signature machinery."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataLake, Table
from repro.domains.signatures import (
    build_term_index,
    context_signature,
    robust_signature,
)

values_strategy = st.text(
    alphabet=string.ascii_uppercase[:8], min_size=1, max_size=3
)
lake_strategy = st.lists(
    st.lists(values_strategy, min_size=2, max_size=8),
    min_size=1,
    max_size=5,
).map(
    lambda cols: DataLake([
        Table.from_columns(f"t{i}", {"c": col})
        for i, col in enumerate(cols)
    ])
)


class TestSignatureProperties:
    @given(lake_strategy)
    @settings(max_examples=50, deadline=None)
    def test_similarities_in_unit_interval(self, lake):
        index = build_term_index(lake)
        for tid in range(index.num_terms):
            _ids, sims = context_signature(index, tid)
            assert all(0.0 < s <= 1.0 for s in sims)

    @given(lake_strategy)
    @settings(max_examples=50, deadline=None)
    def test_context_symmetry(self, lake):
        """sim(a, b) == sim(b, a) whenever both are defined."""
        index = build_term_index(lake)
        sims = {}
        for tid in range(index.num_terms):
            ids, scores = context_signature(index, tid)
            for other, s in zip(ids, scores):
                sims[(tid, int(other))] = float(s)
        for (a, b), s in sims.items():
            assert abs(sims[(b, a)] - s) < 1e-12

    @given(lake_strategy)
    @settings(max_examples=50, deadline=None)
    def test_trim_variant_containment(self, lake):
        """conservative ⊆ liberal ⊆ full context, centrist within full."""
        index = build_term_index(lake)
        for tid in range(index.num_terms):
            full = set(
                int(t) for t in context_signature(index, tid)[0]
            )
            conservative = robust_signature(index, tid, "conservative")
            centrist = robust_signature(index, tid, "centrist")
            liberal = robust_signature(index, tid, "liberal")
            assert conservative <= liberal <= full
            assert centrist <= full
            assert conservative <= centrist or conservative == centrist

    @given(lake_strategy)
    @settings(max_examples=50, deadline=None)
    def test_robust_never_empty_when_context_nonempty(self, lake):
        index = build_term_index(lake)
        for tid in range(index.num_terms):
            full, _ = context_signature(index, tid)
            if full.size:
                assert robust_signature(index, tid)
