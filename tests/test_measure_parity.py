"""Clean-lake parity: ``skeleton_betweenness`` == ``betweenness``.

On a lake where every value is its own confusable skeleton, the
skeleton quotient is the identity, the measure delegates to the plain
betweenness built-in, and rankings must match bit-for-bit — exact
runs and sampled runs alike.  This pins that registering the
adversarial measure cannot regress any paper-replication number.
"""

import pytest

from repro.api.index import HomographIndex
from repro.bench.tus import TUSConfig, generate_tus
from repro.core.confusables import skeleton


@pytest.fixture(scope="module")
def tus_small_index():
    with HomographIndex(
        generate_tus(TUSConfig.small(seed=3)).lake
    ) as index:
        yield index


def assert_bit_identical(baseline, skeletal):
    __tracebackhide__ = True
    assert list(skeletal.ranking) == list(baseline.ranking)
    assert skeletal.scores == baseline.scores
    assert skeletal.descending == baseline.descending


class TestCleanLakeParity:
    def test_figure1_exact(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        assert_bit_identical(
            index.detect(measure="betweenness"),
            index.detect(measure="skeleton_betweenness"),
        )

    def test_figure1_endpoints_variant(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        assert_bit_identical(
            index.detect(measure="betweenness", endpoints="values"),
            index.detect(
                measure="skeleton_betweenness", endpoints="values"
            ),
        )

    def test_tus_small_exact(self, tus_small_index):
        assert_bit_identical(
            tus_small_index.detect(measure="betweenness"),
            tus_small_index.detect(measure="skeleton_betweenness"),
        )

    def test_tus_small_sampled(self, tus_small_index):
        assert_bit_identical(
            tus_small_index.detect(
                measure="betweenness", sample_size=200, seed=5
            ),
            tus_small_index.detect(
                measure="skeleton_betweenness", sample_size=200, seed=5
            ),
        )

    def test_identity_is_recorded_in_parameters(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        response = index.detect(measure="skeleton_betweenness")
        assert response.parameters["skeleton_collisions"] == 0
        assert (
            response.parameters["skeleton_classes"]
            == index.graph.num_values
        )
        # The delegation really was the identity: every graph value is
        # its own skeleton.
        assert all(
            skeleton(name) == name
            for name in index.graph.value_names
        )
