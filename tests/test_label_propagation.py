"""Tests for label-propagation community detection."""

import pytest

from repro.core.builder import build_graph, build_graph_from_columns
from repro.core.label_propagation import (
    attribute_community_map,
    communities,
    cross_community_values,
    value_communities,
)


@pytest.fixture
def two_cluster_graph():
    # Two dense clusters joined only through the homograph H.
    return build_graph_from_columns({
        "A1": ["a1", "a2", "a3", "H"],
        "A2": ["a1", "a2", "a3", "a4"],
        "B1": ["b1", "b2", "b3", "H"],
        "B2": ["b1", "b2", "b3", "b4"],
    })


class TestCommunities:
    def test_partition_covers_all_nodes(self, two_cluster_graph):
        groups = communities(two_cluster_graph, seed=0)
        covered = set()
        for group in groups:
            assert not (covered & group)  # disjoint
            covered |= group
        assert covered == set(range(two_cluster_graph.num_nodes))

    def test_two_clusters_found(self, two_cluster_graph):
        groups = value_communities(two_cluster_graph, seed=0)
        # The two dense cores must land in different communities.
        cluster_of = {}
        for i, group in enumerate(groups):
            for name in group:
                cluster_of[name] = i
        assert cluster_of["A1"] != cluster_of["B1"]
        assert cluster_of["A1"] == cluster_of["A2"]
        assert cluster_of["B1"] == cluster_of["B2"]

    def test_empty_graph(self):
        graph = build_graph_from_columns({})
        assert communities(graph) == []

    def test_deterministic_given_seed(self, two_cluster_graph):
        a = communities(two_cluster_graph, seed=3)
        b = communities(two_cluster_graph, seed=3)
        assert a == b


class TestAttributeCommunityMap:
    def test_all_attributes_mapped(self, two_cluster_graph):
        mapping = attribute_community_map(two_cluster_graph, seed=0)
        assert set(mapping) == {"A1", "A2", "B1", "B2"}

    def test_same_cluster_same_community(self, two_cluster_graph):
        mapping = attribute_community_map(two_cluster_graph, seed=0)
        assert mapping["A1"] == mapping["A2"]
        assert mapping["B1"] == mapping["B2"]
        assert mapping["A1"] != mapping["B1"]


class TestCrossCommunityValues:
    def test_homograph_spans_communities(self, two_cluster_graph):
        spanning = cross_community_values(two_cluster_graph, seed=0)
        assert spanning.get("H") == 2

    def test_core_values_do_not_span(self, two_cluster_graph):
        spanning = cross_community_values(two_cluster_graph, seed=0)
        assert "A1" not in spanning
        assert "B2" not in spanning

    def test_on_running_example(self, figure1_lake):
        # Label propagation is stochastic and on a graph this small it
        # often collapses everything into one community; with seed 2 it
        # resolves the animal vs car/company split and exposes the
        # bridging homograph.
        graph = build_graph(figure1_lake)
        spanning = cross_community_values(graph, seed=2)
        assert "JAGUAR" in spanning
        assert spanning["JAGUAR"] >= 2
