"""Property-based tests (hypothesis) for the graph layer."""

import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_graph_from_columns
from repro.core.normalize import normalize_value

# Small alphabet so values collide across columns (the interesting case).
values_strategy = st.text(
    alphabet=string.ascii_uppercase[:8], min_size=1, max_size=3
)
column_strategy = st.lists(values_strategy, min_size=1, max_size=12)
columns_strategy = st.dictionaries(
    keys=st.text(string.ascii_lowercase, min_size=1, max_size=5),
    values=column_strategy,
    min_size=1,
    max_size=6,
)


class TestNormalizeProperties:
    @given(st.text(max_size=30))
    def test_idempotent(self, raw):
        once = normalize_value(raw)
        assert normalize_value(once) == once

    @given(st.text(max_size=30))
    def test_never_has_edge_whitespace(self, raw):
        value = normalize_value(raw)
        assert value == value.strip()

    @given(st.text(max_size=30))
    def test_case_insensitive(self, raw):
        assert normalize_value(raw.lower()) == normalize_value(raw.upper())


class TestGraphProperties:
    @given(columns_strategy)
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edges(self, columns):
        graph = build_graph_from_columns(columns)
        assert int(graph.degrees().sum()) == 2 * graph.num_edges

    @given(columns_strategy)
    @settings(max_examples=60, deadline=None)
    def test_bipartite_edges_cross_sides(self, columns):
        graph = build_graph_from_columns(columns)
        for v in range(graph.num_values):
            for neighbor in graph.neighbors(v):
                assert graph.is_attribute_node(int(neighbor))
        for a in range(graph.num_values, graph.num_nodes):
            for neighbor in graph.neighbors(a):
                assert graph.is_value_node(int(neighbor))

    @given(columns_strategy)
    @settings(max_examples=60, deadline=None)
    def test_value_neighbors_symmetric(self, columns):
        graph = build_graph_from_columns(columns)
        for v in range(graph.num_values):
            for w in graph.value_neighbors(v):
                assert v in graph.value_neighbors(int(w))

    @given(columns_strategy)
    @settings(max_examples=40, deadline=None)
    def test_pruning_is_idempotent(self, columns):
        graph = build_graph_from_columns(columns)
        once = graph.prune_values(min_degree=2)
        twice = once.prune_values(min_degree=2)
        assert once.num_values == twice.num_values
        assert once.num_edges == twice.num_edges

    @given(columns_strategy)
    @settings(max_examples=40, deadline=None)
    def test_pruned_values_subset(self, columns):
        graph = build_graph_from_columns(columns)
        pruned = graph.prune_values(min_degree=2)
        assert set(pruned.value_names) <= set(graph.value_names)
        for name in pruned.value_names:
            assert pruned.degree(pruned.value_id(name)) == \
                graph.degree(graph.value_id(name))

    @given(columns_strategy, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_column_order_invariance(self, columns, seed):
        """Scores must not depend on table iteration order."""
        graph_a = build_graph_from_columns(columns)
        rng = np.random.default_rng(seed)
        names = list(columns)
        rng.shuffle(names)
        graph_b = build_graph_from_columns({n: columns[n] for n in names})
        assert graph_a.num_edges == graph_b.num_edges
        for name in graph_a.value_names:
            assert sorted(
                graph_a.attribute_name(int(x))
                for x in graph_a.value_attributes(graph_a.value_id(name))
            ) == sorted(
                graph_b.attribute_name(int(x))
                for x in graph_b.value_attributes(graph_b.value_id(name))
            )
