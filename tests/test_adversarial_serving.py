"""Serving conformance for the adversarial skeleton measure.

``skeleton_betweenness`` rides the measure registry, so the HTTP
tier, the workspace, and snapshot persistence must pick it up with
zero serving-stack changes: ``POST /lakes/<name>/detect`` works, the
unknown-measure 404 wording now advertises it, and a forged-lake
response survives the PR-6 snapshot save/load byte-identical
cache-hit path.
"""

import json

import pytest

from repro import HomographIndex, Workspace, start_server
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from tests.test_http_protocol import assert_error_shape, raw_request


def make_forged_lake() -> DataLake:
    """A small lake with one planted confusable forgery.

    ``PARIS`` bridges two city-domain attributes; ``ΡARIS`` (Greek
    Rho) occupies two food-domain attributes.  Exact matching sees two
    unrelated values; the skeleton quotient sees one homograph
    spanning both domains.
    """
    lake = DataLake()
    lake.add_table(Table.from_columns("cities", {
        "city": ["Paris", "London", "Paris", "Berlin", "London",
                 "Berlin"],
    }))
    lake.add_table(Table.from_columns("capitals", {
        "capital": ["Paris", "Madrid", "Paris", "Rome", "Madrid",
                    "Rome"],
    }))
    lake.add_table(Table.from_columns("menus", {
        "dish": ["ΡARIS", "Sushi", "ΡARIS", "Taco", "Sushi", "Taco"],
    }))
    lake.add_table(Table.from_columns("orders", {
        "item": ["ΡARIS", "Taco", "Sushi", "ΡARIS", "Taco", "Sushi"],
    }))
    return lake


@pytest.fixture
def served_forged():
    workspace = Workspace()
    workspace.attach("adv", make_forged_lake())
    server = start_server(workspace, port=0)
    yield server
    server.drain()


class TestSkeletonMeasureOverHTTP:
    def test_detect_succeeds_through_the_registry(self, served_forged):
        body = json.dumps({"measure": "skeleton_betweenness"}).encode()
        status, headers, payload = raw_request(
            served_forged, "POST", "/lakes/adv/detect", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert payload["measure"] == "skeleton_betweenness"
        top = [entry["value"] for entry in payload["ranking"][:2]]
        assert set(top) == {"PARIS", "ΡARIS"}
        assert payload["parameters"]["skeleton_collisions"] == 1

    def test_ranking_route_serves_the_measure(self, served_forged):
        body = json.dumps({"measure": "skeleton_betweenness"}).encode()
        raw_request(
            served_forged, "POST", "/lakes/adv/detect", body=body,
            headers={"Content-Length": str(len(body))},
        )
        status, _, payload = raw_request(
            served_forged, "GET",
            "/lakes/adv/ranking/skeleton_betweenness?limit=2",
        )
        assert status == 200
        values = [entry["value"] for entry in payload["entries"]]
        assert set(values) == {"PARIS", "ΡARIS"}

    def test_unknown_measure_wording_still_holds(self, served_forged):
        body = json.dumps({"measure": "page-rank"}).encode()
        status, _, payload = raw_request(
            served_forged, "POST", "/lakes/adv/detect", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 404
        assert_error_shape(payload, 404, "unknown-measure")
        message = payload["error"]["message"]
        assert "unknown measure 'page-rank'" in message
        # The availability listing now advertises the new built-in.
        assert "skeleton_betweenness" in message
        assert "betweenness" in message


class TestForgedSnapshotParity:
    def test_forged_cache_hit_is_byte_identical(self, tmp_path):
        target = tmp_path / "forged-snap"
        with HomographIndex(make_forged_lake()) as fresh:
            fresh.detect(measure="skeleton_betweenness")
            fresh.save(target)
            fresh_hit = fresh.detect(measure="skeleton_betweenness")
        assert fresh_hit.cached
        with HomographIndex.load(target) as loaded:
            loaded_hit = loaded.detect(measure="skeleton_betweenness")
        assert loaded_hit.cached
        assert loaded_hit.to_json() == fresh_hit.to_json()

    def test_loaded_ranking_still_pairs_the_forgery(self, tmp_path):
        target = tmp_path / "forged-snap"
        with HomographIndex(make_forged_lake()) as fresh:
            fresh.detect(measure="skeleton_betweenness")
            fresh.save(target)
        with HomographIndex.load(target) as loaded:
            response = loaded.detect(measure="skeleton_betweenness")
            assert set(response.top_values(2)) == {"PARIS", "ΡARIS"}
