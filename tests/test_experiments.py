"""Fast unit tests for the experiment runners (repro.eval.experiments).

The benchmarks exercise these at full scale; here they run on reduced
inputs so regressions in the runners themselves (formatting, plumbing,
metric wiring) surface in the unit suite.
"""

import pytest

from repro.bench.synthetic import SBConfig, generate_sb
from repro.bench.tus import TUSConfig, generate_tus
from repro.eval.experiments import (
    experiment_d4_impact,
    experiment_injection_cardinality,
    experiment_injection_meanings,
    experiment_runtime_scaling,
    experiment_sample_size_sweep,
    experiment_sb_baseline,
    experiment_sb_top55,
    experiment_table1,
    experiment_tus_topk,
)


@pytest.fixture(scope="module")
def small_sb():
    return generate_sb(SBConfig(rows=200, seed=1))


@pytest.fixture(scope="module")
def small_tus():
    return generate_tus(TUSConfig.small(seed=1))


class TestTable1:
    def test_contains_all_rows(self, small_sb, small_tus):
        result = experiment_table1(sb=small_sb, tus=small_tus)
        text = result.format()
        for label in ("SB", "TUS-I (clean)", "TUS-like", "SCALE"):
            assert label in text

    def test_sb_row_exact(self, small_sb, small_tus):
        text = experiment_table1(sb=small_sb, tus=small_tus).format()
        sb_row = next(
            line for line in text.splitlines() if line.startswith("SB")
        )
        assert " 13 " in f" {sb_row} " or sb_row.split()[1] == "13"


class TestTop55:
    def test_betweenness_entries(self, small_sb):
        result = experiment_sb_top55("betweenness", sb=small_sb, k=20)
        assert len(result.entries) == 20
        assert result.total_homographs == 55
        assert 0 <= result.homographs_in_top <= 20
        assert "betweenness" in result.format()

    def test_lcc_entries(self, small_sb):
        result = experiment_sb_top55("lcc", sb=small_sb, k=10)
        scores = [s for _v, s, _h in result.entries]
        assert scores == sorted(scores)  # ascending for LCC


class TestBaseline:
    def test_comparison_structure(self, small_sb):
        result = experiment_sb_baseline(sb=small_sb)
        assert result.k == 55
        assert 0.0 <= result.d4_precision <= 1.0
        assert 0.0 <= result.domainnet_precision <= 1.0
        assert "D4 baseline" in result.format()


class TestInjectionSweeps:
    def test_cardinality_rows(self, small_tus):
        result = experiment_injection_cardinality(
            tus=small_tus, thresholds=(0, 20), repeats=1, sample_size=150
        )
        assert [t for t, _r in result.rows] == [0, 20]
        assert all(0.0 <= r <= 1.0 for _t, r in result.rows)
        assert "min_cardinality" in result.format()

    def test_meanings_rows(self, small_tus):
        result = experiment_injection_meanings(
            tus=small_tus, meanings=(2, 3), min_cardinality=0,
            repeats=1, sample_size=150,
        )
        assert [m for m, _r in result.rows] == [2, 3]


class TestTusTopK:
    def test_curve_and_top10(self, small_tus):
        result = experiment_tus_topk(
            tus=small_tus, sample_size=200, num_curve_points=5
        )
        assert len(result.top10) == 10
        assert result.curve_ks == sorted(result.curve_ks)
        assert 0.0 <= result.p_at_200 <= 1.0
        assert result.best_f1 >= 0.0
        assert "paper: 0.89" in result.format()


class TestSampleSweep:
    def test_rows_and_exact(self, small_tus):
        result = experiment_sample_size_sweep(
            tus=small_tus, sample_sizes=(50, 150), include_exact=True
        )
        assert len(result.rows) == 2
        assert result.exact_precision == result.exact_precision  # not NaN
        assert "exact" in result.format()

    def test_without_exact(self, small_tus):
        result = experiment_sample_size_sweep(
            tus=small_tus, sample_sizes=(50,), include_exact=False
        )
        assert result.exact_precision != result.exact_precision  # NaN


class TestRuntimeScaling:
    def test_rows_sorted_and_linear_check(self):
        from repro.bench.scale import ScaleConfig

        result = experiment_runtime_scaling(
            config=ScaleConfig(num_tables=6, rows_per_table=150),
            edge_targets=(2000, 4000),
        )
        edges = [e for e, _n, _s in result.rows]
        assert edges == sorted(edges)
        assert isinstance(result.is_roughly_linear(tolerance=5.0), bool)


class TestD4Impact:
    def test_structure(self, small_tus):
        result = experiment_d4_impact(
            tus=small_tus, injection_counts=(10,), meanings=(2,)
        )
        assert result.baseline_domains > 0
        assert len(result.rows) == 1
        n, m, domains, max_c, avg_c = result.rows[0]
        assert (n, m) == (10, 2)
        assert domains > 0
        assert "no injections" in result.format()
