"""Unit tests for repro.domains.signatures."""

import numpy as np
import pytest

from repro import DataLake, Table
from repro.domains.signatures import (
    all_robust_signatures,
    build_term_index,
    context_signature,
    robust_signature,
)


@pytest.fixture
def lake():
    # Two animal columns, one company column; JAGUAR spans both types.
    return DataLake([
        Table.from_columns("zoo", {
            "animal": ["Jaguar", "Panda", "Lemur", "Tiger"],
            "count": ["1", "2", "3", "4"],       # numeric: excluded
        }),
        Table.from_columns("wild", {
            "species": ["Jaguar", "Panda", "Tiger", "Wolf"],
        }),
        Table.from_columns("corp", {
            "company": ["Jaguar", "Google", "Amazon"],
        }),
    ])


class TestBuildTermIndex:
    def test_text_columns_only(self, lake):
        index = build_term_index(lake)
        assert set(index.columns) == {
            "zoo.animal", "wild.species", "corp.company"
        }

    def test_terms_normalized_and_unique(self, lake):
        index = build_term_index(lake)
        assert "JAGUAR" in index.term_ids
        assert len(index.terms) == len(set(index.terms))

    def test_term_columns_inverse(self, lake):
        index = build_term_index(lake)
        jaguar = index.term_ids["JAGUAR"]
        cols = {index.columns[int(c)] for c in index.term_columns[jaguar]}
        assert cols == {"zoo.animal", "wild.species", "corp.company"}

    def test_column_terms_sorted(self, lake):
        index = build_term_index(lake)
        for ids in index.column_terms:
            assert list(ids) == sorted(ids)


class TestContextSignature:
    def test_similarities_are_column_jaccard(self, lake):
        index = build_term_index(lake)
        jaguar = index.term_ids["JAGUAR"]
        ids, sims = context_signature(index, jaguar)
        by_name = {index.terms[int(t)]: float(s) for t, s in zip(ids, sims)}
        # PANDA and TIGER share 2 of JAGUAR's 3 columns: J = 2/3.
        assert by_name["PANDA"] == pytest.approx(2 / 3)
        assert by_name["TIGER"] == pytest.approx(2 / 3)
        # GOOGLE shares only corp.company: J = 1/3.
        assert by_name["GOOGLE"] == pytest.approx(1 / 3)

    def test_sorted_descending(self, lake):
        index = build_term_index(lake)
        _, sims = context_signature(index, index.term_ids["JAGUAR"])
        assert list(sims) == sorted(sims, reverse=True)

    def test_excludes_self(self, lake):
        index = build_term_index(lake)
        jaguar = index.term_ids["JAGUAR"]
        ids, _ = context_signature(index, jaguar)
        assert jaguar not in ids

    def test_isolated_term(self):
        lake = DataLake([Table.from_columns("t", {"a": ["only"]})])
        index = build_term_index(lake)
        ids, sims = context_signature(index, 0)
        assert ids.size == 0


class TestRobustSignature:
    def test_centrist_cuts_at_steepest_drop(self, lake):
        index = build_term_index(lake)
        jaguar = index.term_ids["JAGUAR"]
        robust = robust_signature(index, jaguar, variant="centrist")
        names = {index.terms[t] for t in robust}
        # Steepest drop is 2/3 -> 1/3; the 2/3 block survives.
        assert names == {"PANDA", "TIGER"}

    def test_liberal_keeps_through_last_drop(self, lake):
        index = build_term_index(lake)
        jaguar = index.term_ids["JAGUAR"]
        robust = robust_signature(index, jaguar, variant="liberal")
        names = {index.terms[t] for t in robust}
        # Only one drop level here (2/3 -> 1/3), so liberal == centrist.
        assert names == {"PANDA", "TIGER"}

    def test_conservative_cuts_at_first_drop(self, lake):
        index = build_term_index(lake)
        panda = index.term_ids["PANDA"]
        conservative = robust_signature(index, panda, variant="conservative")
        centrist = robust_signature(index, panda, variant="centrist")
        assert conservative <= centrist or conservative == centrist

    def test_flat_signature_kept_whole(self):
        lake = DataLake([
            Table.from_columns("t", {"a": ["x", "y", "z"]}),
        ])
        index = build_term_index(lake)
        x = index.term_ids["X"]
        robust = robust_signature(index, x)
        assert {index.terms[t] for t in robust} == {"Y", "Z"}

    def test_unknown_variant(self, lake):
        index = build_term_index(lake)
        with pytest.raises(ValueError):
            robust_signature(index, 0, variant="bogus")

    def test_all_signatures_dense(self, lake):
        index = build_term_index(lake)
        signatures = all_robust_signatures(index)
        assert len(signatures) == index.num_terms
