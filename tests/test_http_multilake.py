"""Multi-lake HTTP serving: namespaced routes, async jobs, auth, gzip.

The ISSUE-5 acceptance criteria over a real socket: one server
process hosts two lakes over one persistent ``ProcessBackend`` (one
pool's worth of workers, per-lake ``/dev/shm`` exports all released
on drain); ``POST /lakes/<name>/detect?async=1`` returns a job id
whose terminal ``GET /jobs/<id>`` payload is byte-identical to the
synchronous response; legacy un-prefixed routes keep working against
the default lake.  Plus the satellite surfaces: HTTP/1.1 keep-alive,
gzip ranking pages, and bearer-token auth.
"""

import gzip
import http.client
import json
import multiprocessing
import os
import time

import pytest

from repro import (
    ExecutionConfig,
    HomographClient,
    JobFailed,
    ServiceError,
    Table,
    Workspace,
    start_server,
)
from tests.conftest import make_figure1_lake
from tests.test_http_protocol import assert_error_shape, raw_request
from tests.test_workspace import make_cars_lake

PERSISTENT_2 = ExecutionConfig(backend="process", n_jobs=2, persistent=True)

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="shared-memory segment files only observable on /dev/shm",
)


def two_lake_workspace(execution=None) -> Workspace:
    """zoo (figure 1, default) + cars, optionally on a shared pool."""
    workspace = Workspace(execution=execution)
    workspace.attach("zoo", make_figure1_lake())
    workspace.attach("cars", make_cars_lake())
    return workspace


@pytest.fixture
def multilake_stack():
    """A served two-lake workspace plus a ready client."""
    workspace = two_lake_workspace()
    server = start_server(workspace, port=0, job_ttl=30.0)
    client = HomographClient(server.url, timeout=30.0)
    client.wait_ready()
    yield server, client, workspace
    server.drain()


class TestNamespacedRoutes:
    def test_lakes_listing(self, multilake_stack):
        server, client, workspace = multilake_stack
        listing = client.lakes()
        assert listing["default"] == "zoo"
        assert [lake["name"] for lake in listing["lakes"]] == \
            ["zoo", "cars"]
        zoo = listing["lakes"][0]
        assert zoo["default"] is True and zoo["tables"] == 4

    def test_per_lake_detect_sees_per_lake_graphs(self, multilake_stack):
        server, client, workspace = multilake_stack
        zoo = client.lake("zoo").detect(measure="lcc")
        cars = client.lake("cars").detect(measure="lcc")
        assert "PANDA" in zoo.scores and "PANDA" not in cars.scores
        assert "FIAT" in cars.scores and "FIAT" not in zoo.scores

    def test_legacy_routes_alias_the_default_lake(self, multilake_stack):
        server, client, workspace = multilake_stack
        namespaced = client.lake("zoo").detect(measure="lcc")
        legacy = client.detect(measure="lcc")      # un-prefixed POST
        assert legacy.cached                       # same index, cached
        assert legacy.scores == namespaced.scores
        walked = list(client.iter_ranking("lcc", limit=3))
        assert walked == list(namespaced.ranking)

    def test_per_lake_tables_mutate_only_their_lake(self, multilake_stack):
        server, client, workspace = multilake_stack
        cars = client.lake("cars")
        added = cars.add_table(Table.from_columns(
            "lots", {"lot": ["A1", "A2"], "brand": ["Fiat", "Fiat"]}
        ))
        assert added["tables"] == 3
        assert client.healthz()["tables"] == 4      # zoo untouched
        assert "lots" not in workspace.get("zoo").lake
        removed = cars.remove_table("lots")
        assert removed["tables"] == 2

    def test_percent_encoded_table_names_roundtrip(self, multilake_stack):
        # The client quote()s names into the path; the server must
        # unquote segments or encoded names could never be deleted.
        server, client, workspace = multilake_stack
        cars = client.lake("cars")
        cars.add_table(Table.from_columns(
            "my table/v1", {"c": ["x", "x"]}
        ))
        assert "my table/v1" in workspace.get("cars").lake
        removed = cars.remove_table("my table/v1")
        assert removed["table"] == "my table/v1"
        assert "my table/v1" not in workspace.get("cars").lake

    def test_per_lake_healthz_and_stats(self, multilake_stack):
        server, client, workspace = multilake_stack
        cars = client.lake("cars")
        health = cars.healthz()
        assert health == {"status": "ok", "lake": "cars", "tables": 2}
        cars.detect(measure="lcc")
        stats = cars.stats()
        assert stats["tables"] == 2
        assert stats["cache"]["misses"] == 1

    def test_unknown_lake_is_404(self, multilake_stack):
        server, client, workspace = multilake_stack
        with pytest.raises(ServiceError) as info:
            client.lake("nope").detect(measure="lcc")
        assert info.value.status == 404
        assert info.value.code == "unknown-lake"
        assert "zoo" in info.value.message

    def test_detached_lake_404s_but_siblings_serve(self, multilake_stack):
        server, client, workspace = multilake_stack
        workspace.detach("cars")
        with pytest.raises(ServiceError) as info:
            client.lake("cars").detect(measure="lcc")
        assert info.value.code == "unknown-lake"
        assert client.lake("zoo").detect(measure="lcc").scores

    def test_global_stats_merges_lakes_jobs_http(self, multilake_stack):
        server, client, workspace = multilake_stack
        client.lake("cars").detect(measure="lcc")
        stats = client.stats()
        # Legacy top-level shape = the default lake's snapshot.
        assert stats["tables"] == 4
        assert "cache" in stats and "pool" in stats
        assert set(stats["lakes"]) == {"zoo", "cars"}
        assert stats["lakes"]["cars"]["cache"]["misses"] == 1
        assert stats["default_lake"] == "zoo"
        assert stats["workspace"]["closed"] is False
        assert stats["jobs"]["tracked"] == 0
        assert stats["http"]["served"] >= 2


class TestAsyncJobs:
    def test_async_terminal_payload_byte_identical_to_sync(
        self, multilake_stack
    ):
        server, client, workspace = multilake_stack
        cars = client.lake("cars")
        request_payload = {"measure": "betweenness"}
        # Warm the cache so both spellings serve the same stored
        # response (timings and cached-flag included).
        raw_request(
            server, "POST", "/lakes/cars/detect",
            body=json.dumps(request_payload).encode(),
            headers={"Content-Length": str(len(json.dumps(
                request_payload).encode()))},
        )
        body = json.dumps(request_payload).encode()
        status, _, sync_payload = raw_request(
            server, "POST", "/lakes/cars/detect", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 200 and sync_payload["cached"] is True

        job_id = cars.submit(measure="betweenness")
        response = cars.wait(job_id, timeout=30.0)
        assert response.cached
        status, _, job_payload = raw_request(
            server, "GET", f"/jobs/{job_id}"
        )
        assert status == 200 and job_payload["state"] == "done"
        sync_bytes = json.dumps(
            sync_payload, sort_keys=True).encode()
        async_bytes = json.dumps(
            job_payload["response"], sort_keys=True).encode()
        assert async_bytes == sync_bytes

    def test_submit_returns_202_with_poll_url(self, multilake_stack):
        server, client, workspace = multilake_stack
        body = json.dumps({"measure": "lcc"}).encode()
        status, _, payload = raw_request(
            server, "POST", "/lakes/zoo/detect?async=1", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 202
        assert payload["lake"] == "zoo"
        assert payload["poll"] == f"/jobs/{payload['job']}"
        deadline = time.monotonic() + 15
        while True:
            status, _, snapshot = raw_request(
                server, "GET", payload["poll"]
            )
            assert status == 200
            if snapshot["state"] in ("done", "error"):
                break
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert snapshot["state"] == "done"

    def test_async_on_legacy_route_uses_default_lake(
        self, multilake_stack
    ):
        server, client, workspace = multilake_stack
        job_id = client.submit(measure="lcc")
        response = client.wait(job_id, timeout=30.0)
        assert "PANDA" in response.scores          # zoo, not cars
        assert client.poll(job_id)["lake"] == "zoo"

    def test_async_unknown_measure_fails_fast_not_as_job(
        self, multilake_stack
    ):
        server, client, workspace = multilake_stack
        body = json.dumps({"measure": "page-rank"}).encode()
        status, _, payload = raw_request(
            server, "POST", "/lakes/zoo/detect?async=1", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 404
        assert_error_shape(payload, 404, "unknown-measure")

    def test_async_top_is_validated_and_honored(self, multilake_stack):
        server, client, workspace = multilake_stack
        body = json.dumps({"measure": "lcc"}).encode()
        headers = {"Content-Length": str(len(body))}
        # Bad ?top= fails fast, exactly like the synchronous route.
        status, _, payload = raw_request(
            server, "POST", "/lakes/zoo/detect?async=1&top=abc",
            body=body, headers=headers,
        )
        assert status == 400
        assert_error_shape(payload, 400, "invalid-paging")
        # A valid ?top= truncates the job's terminal payload.
        status, _, accepted = raw_request(
            server, "POST", "/lakes/zoo/detect?async=1&top=2",
            body=body, headers=headers,
        )
        assert status == 202
        snapshot = json.loads(json.dumps(
            client.poll(accepted["job"])))
        deadline = time.monotonic() + 15
        while snapshot["state"] not in ("done", "error"):
            assert time.monotonic() < deadline
            time.sleep(0.02)
            snapshot = client.poll(accepted["job"])
        assert snapshot["state"] == "done"
        assert len(snapshot["response"]["ranking"]) == 2

    def test_poll_after_ttl_eviction_is_404(self):
        workspace = two_lake_workspace()
        server = start_server(workspace, port=0, job_ttl=0.05)
        client = HomographClient(server.url, timeout=30.0)
        try:
            client.wait_ready()
            job_id = client.submit(measure="lcc")
            client.wait(job_id, timeout=30.0)
            time.sleep(0.2)  # let the TTL lapse
            with pytest.raises(ServiceError) as info:
                client.poll(job_id)
            assert info.value.status == 404
            assert info.value.code == "unknown-job"
        finally:
            server.drain()

    def test_cancel_of_finished_job_is_noop(self, multilake_stack):
        server, client, workspace = multilake_stack
        job_id = client.submit(measure="lcc")
        client.wait(job_id, timeout=30.0)
        snapshot = client.cancel_job(job_id)
        assert snapshot["state"] == "done"          # unchanged
        assert client.poll(job_id)["state"] == "done"

    def test_submit_past_job_cap_is_503(self):
        workspace = two_lake_workspace()
        server = start_server(workspace, port=0, max_jobs=1)
        client = HomographClient(server.url, timeout=30.0)
        try:
            client.wait_ready()
            first = client.submit(measure="lcc")
            client.wait(first, timeout=30.0)
            # The finished job still occupies the (tiny) tracking cap.
            with pytest.raises(ServiceError) as info:
                client.submit(measure="betweenness")
            assert info.value.status == 503
            assert info.value.code == "jobs-overloaded"
            assert info.value.retry_after is not None
        finally:
            server.drain()

    def test_unknown_job_is_404(self, multilake_stack):
        server, client, workspace = multilake_stack
        for method in ("GET", "DELETE"):
            status, _, payload = raw_request(
                server, method, "/jobs/deadbeef"
            )
            assert status == 404
            assert_error_shape(payload, 404, "unknown-job")

    def test_failed_job_raises_jobfailed_from_wait(self, multilake_stack):
        server, client, workspace = multilake_stack
        from repro import MeasureOutput, register_measure, \
            unregister_measure

        def boom(graph, request):
            raise ValueError("kernel exploded")

        register_measure("boom-http-test", boom)
        try:
            job_id = client.submit(measure="boom-http-test")
            with pytest.raises(JobFailed) as info:
                client.wait(job_id, timeout=30.0)
            assert info.value.job["error"]["type"] == "ValueError"
        finally:
            unregister_measure("boom-http-test")
        assert isinstance(MeasureOutput, type)  # keep import used


@needs_dev_shm
class TestSharedPoolAcceptance:
    def test_two_lakes_one_pool_exports_released_on_drain(self):
        shm_before = set(os.listdir("/dev/shm"))
        children_before = len(multiprocessing.active_children())
        workspace = two_lake_workspace(execution=PERSISTENT_2)
        server = start_server(workspace, port=0)
        client = HomographClient(server.url, timeout=60.0)
        try:
            client.wait_ready()
            zoo = client.lake("zoo").detect(measure="betweenness")
            cars = client.lake("cars").detect(measure="betweenness")
            assert zoo.scores and cars.scores
            # Exactly one pool's worth of worker processes for 2 lakes.
            workers = (
                len(multiprocessing.active_children()) - children_before
            )
            assert workers == PERSISTENT_2.n_jobs
            # ... and one export (2 segments) per lake.
            live = set(os.listdir("/dev/shm")) - shm_before
            assert len(live) == 4
            backend = workspace.backend
            assert set(backend.export_names) == live
        finally:
            server.drain()
        assert set(os.listdir("/dev/shm")) - shm_before == set()
        assert (
            len(multiprocessing.active_children()) - children_before == 0
        )


class TestKeepAlive:
    def test_one_connection_serves_many_requests(self, multilake_stack):
        server, client, workspace = multilake_stack
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            sock_id = None
            for attempt in range(3):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                assert response.version == 11       # HTTP/1.1
                length = response.getheader("Content-Length")
                body = response.read()
                assert length == str(len(body))     # exact, every time
                # The same underlying socket served every request.
                if sock_id is None:
                    sock_id = id(connection.sock)
                assert id(connection.sock) == sock_id
        finally:
            connection.close()

    def test_pipelined_requests_both_answered_promptly(
        self, multilake_stack
    ):
        # Two requests in one segment: the second lands in rfile's
        # buffer, where select() on the raw socket cannot see it —
        # the idle wait must notice buffered bytes and serve it
        # without stalling until the idle timeout.
        import socket as socket_module

        server, client, workspace = multilake_stack
        host, port = server.server_address[:2]
        raw = socket_module.create_connection((host, port), timeout=10)
        try:
            request = (
                f"GET /healthz HTTP/1.1\r\nHost: {host}\r\n\r\n"
            ).encode()
            start = time.monotonic()
            raw.sendall(request + request)      # pipelined pair
            received = b""
            while received.count(b"HTTP/1.1 200") < 2:
                chunk = raw.recv(65536)
                assert chunk, f"connection closed early: {received!r}"
                received += chunk
                assert time.monotonic() - start < 10
            assert time.monotonic() - start < 5  # not the idle timeout
        finally:
            raw.close()

    def test_errors_carry_content_length_and_close(self, multilake_stack):
        server, client, workspace = multilake_stack
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            connection.request("GET", "/definitely/not/a/route")
            response = connection.getresponse()
            body = response.read()
            assert response.status == 404
            assert response.getheader("Content-Length") == str(len(body))
            # Error responses opt out of keep-alive explicitly.
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_drain_delivers_inflight_response_on_reused_connection(self):
        # Regression: the idle-socket registry must not contain a
        # connection whose *second* request is mid-computation — a
        # drain would shut it down and cut the response.
        import threading

        from repro import MeasureOutput, register_measure, \
            unregister_measure

        state = {"started": threading.Event(),
                 "release": threading.Event()}

        def gated(graph, request):
            state["started"].set()
            state["release"].wait(15)
            return MeasureOutput(scores={"X": 1.0}, descending=True)

        register_measure("gated-keepalive-test", gated)
        workspace = two_lake_workspace()
        server = start_server(workspace, port=0)
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30.0)
        result = {}
        try:
            # Request 1 marks the connection keep-alive-reused.
            connection.request("GET", "/healthz")
            assert connection.getresponse().read()

            def second_request():
                body = json.dumps(
                    {"measure": "gated-keepalive-test"}).encode()
                connection.request(
                    "POST", "/lakes/zoo/detect", body=body,
                    headers={"Content-Length": str(len(body))},
                )
                response = connection.getresponse()
                result["status"] = response.status
                result["body"] = response.read()

            worker = threading.Thread(target=second_request)
            worker.start()
            assert state["started"].wait(10)

            drained = threading.Event()
            drainer = threading.Thread(
                target=lambda: (server.drain(), drained.set()))
            drainer.start()
            time.sleep(0.2)
            assert not drained.is_set()     # drain waits, doesn't cut
            state["release"].set()
            worker.join(30)
            drainer.join(30)
            assert result["status"] == 200
            assert b'"X"' in result["body"]
        finally:
            state["release"].set()
            connection.close()
            server.drain()
            unregister_measure("gated-keepalive-test")

    def test_close_index_true_after_false_still_closes(self):
        # drain(close_index=False) keeps the workspace; a later
        # drain() must still close it rather than no-op on the
        # already-drained flag.
        workspace = two_lake_workspace()
        server = start_server(workspace, port=0)
        HomographClient(server.url, timeout=30.0).wait_ready()
        server.drain(close_index=False)
        assert not workspace.closed
        assert workspace.get("zoo").detect(measure="lcc").scores
        server.drain()
        assert workspace.closed

    def test_drain_shuts_down_idle_keepalive_connections(self):
        workspace = two_lake_workspace()
        server = start_server(workspace, port=0)
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30.0)
        connection.request("GET", "/healthz")
        assert connection.getresponse().read()
        # The connection now idles in keep-alive; drain must not hang
        # on its handler thread (the 60 s socket timeout would fail
        # this test's own timeout if it did).
        started = time.monotonic()
        server.drain()
        assert time.monotonic() - started < 10
        connection.close()


class TestBearerAuth:
    @pytest.fixture
    def authed_stack(self):
        workspace = two_lake_workspace()
        server = start_server(workspace, port=0, auth_token="s3cret")
        yield server
        server.drain()

    def test_missing_token_is_401(self, authed_stack):
        server = authed_stack
        for method, path in [
            ("GET", "/stats"),
            ("GET", "/lakes"),
            ("GET", "/lakes/zoo/ranking/lcc"),
            ("GET", "/jobs/deadbeef"),
        ]:
            status, headers, payload = raw_request(server, method, path)
            assert status == 401, (method, path)
            assert headers["WWW-Authenticate"] == "Bearer"
            assert_error_shape(payload, 401, "unauthorized")

    def test_wrong_token_is_401(self, authed_stack):
        server = authed_stack
        status, _, payload = raw_request(
            server, "GET", "/lakes",
            headers={"Authorization": "Bearer nope"},
        )
        assert status == 401
        assert_error_shape(payload, 401, "unauthorized")

    def test_healthz_stays_open_for_probes(self, authed_stack):
        server = authed_stack
        status, _, payload = raw_request(server, "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"

    def test_client_token_authenticates_everything(self, authed_stack):
        server = authed_stack
        client = HomographClient(server.url, timeout=30.0, token="s3cret")
        assert client.lakes()["default"] == "zoo"
        cars = client.lake("cars")                   # handle inherits it
        assert cars.detect(measure="lcc").scores
        job_id = cars.submit(measure="lcc")
        assert cars.wait(job_id, timeout=30.0).cached

    def test_unauthenticated_client_sees_service_error(self, authed_stack):
        server = authed_stack
        client = HomographClient(server.url, timeout=30.0)
        with pytest.raises(ServiceError) as info:
            client.detect(measure="lcc")
        assert info.value.status == 401
        assert info.value.code == "unauthorized"


class TestGzipRanking:
    def test_ranking_compresses_when_accepted(self, multilake_stack):
        server, client, workspace = multilake_stack
        raw_request(server, "GET", "/lakes/zoo/ranking/lcc")  # warm
        plain_status, plain_headers, plain_payload = raw_request(
            server, "GET", "/lakes/zoo/ranking/lcc"
        )
        assert plain_status == 200
        assert "Content-Encoding" not in plain_headers
        assert plain_headers.get("Vary") == "Accept-Encoding"

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            connection.request(
                "GET", "/lakes/zoo/ranking/lcc",
                headers={"Accept-Encoding": "gzip"},
            )
            response = connection.getresponse()
            raw = response.read()
            assert response.status == 200
            assert response.getheader("Content-Encoding") == "gzip"
            assert response.getheader("Content-Length") == str(len(raw))
            payload = json.loads(gzip.decompress(raw))
        finally:
            connection.close()
        assert payload == plain_payload

    def test_client_transparently_decompresses(self, multilake_stack):
        server, client, workspace = multilake_stack
        reference = client.lake("zoo").detect(measure="lcc")
        page = client.lake("zoo").ranking_page("lcc", limit=10_000)
        assert [e["value"] for e in page["entries"]] == \
            [entry.value for entry in reference.ranking]

    def test_detect_responses_stay_uncompressed(self, multilake_stack):
        # Compression is negotiated per route: only ranking pages opt
        # in (large, repetitive payloads).
        server, client, workspace = multilake_stack
        body = json.dumps({"measure": "lcc"}).encode()
        status, headers, _ = raw_request(
            server, "POST", "/lakes/zoo/detect", body=body,
            headers={
                "Content-Length": str(len(body)),
                "Accept-Encoding": "gzip",
            },
        )
        assert status == 200
        assert "Content-Encoding" not in headers
