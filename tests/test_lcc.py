"""Unit tests for repro.core.lcc — including the Example 3.6 calibration."""

import numpy as np
import pytest

from repro.core.builder import build_graph, build_graph_from_columns
from repro.core.lcc import lcc_score_map, lcc_scores


class TestExample36Calibration:
    """LCC must reproduce the paper's running-example scores."""

    def test_paper_scores(self, figure1_lake):
        g = build_graph(figure1_lake)
        lcc = lcc_score_map(g)
        assert lcc["JAGUAR"] == pytest.approx(0.357, abs=0.005)
        assert lcc["PUMA"] == pytest.approx(0.433, abs=0.005)
        assert lcc["TOYOTA"] == pytest.approx(0.458, abs=0.005)
        assert lcc["PANDA"] == pytest.approx(0.458, abs=0.005)

    def test_homographs_rank_below_unambiguous_repeats(self, figure1_lake):
        g = build_graph(figure1_lake)
        lcc = lcc_score_map(g)
        assert lcc["JAGUAR"] < lcc["TOYOTA"]
        assert lcc["PUMA"] < lcc["PANDA"]


class TestAttributeJaccardVariant:
    def test_single_attribute_clique_scores_one(self):
        # All values share exactly one attribute: every pairwise Jaccard
        # of attribute sets is 1.
        g = build_graph_from_columns({"A": ["x", "y", "z"]})
        scores = lcc_scores(g)
        np.testing.assert_allclose(scores, 1.0)

    def test_isolated_value_scores_zero(self):
        g = build_graph_from_columns({"A": ["x"]})
        assert lcc_scores(g)[0] == 0.0

    def test_two_disjoint_columns_bridged(self):
        # h is the only shared value; its attribute set {A,B} has
        # Jaccard 1/2 with every neighbor's singleton set.
        g = build_graph_from_columns(
            {"A": ["h", "a1", "a2"], "B": ["h", "b1", "b2"]}
        )
        scores = lcc_score_map(g)
        assert scores["H"] == pytest.approx(0.5)
        # a1's neighbors are a2 (J=1) and h (J=1/2)
        assert scores["A1"] == pytest.approx(0.75)

    def test_empty_graph(self):
        g = build_graph_from_columns({})
        assert lcc_scores(g).size == 0


class TestValueNeighborsVariant:
    def test_figure1_literal_eq1(self, figure1_lake):
        # The literal Eq. 1 reading gives JAGUAR 2/7 (hand-derived in
        # DESIGN.md) — different from the paper's reported 0.36.
        g = build_graph(figure1_lake)
        scores = lcc_score_map(g, variant="value-neighbors")
        assert scores["JAGUAR"] == pytest.approx(2 / 7, abs=1e-9)

    def test_clique_follows_open_neighborhood_formula(self):
        # In an n-value clique, N(x) and N(y) differ only in {x, y}, so
        # every pairwise Jaccard is (n-2)/n.
        for n in (3, 5, 8):
            g = build_graph_from_columns({"A": [f"v{i}" for i in range(n)]})
            scores = lcc_scores(g, variant="value-neighbors")
            np.testing.assert_allclose(scores, (n - 2) / n)

    def test_pruned_figure1_hand_derived(self, figure1_lake):
        # Hand-derived on the 4-candidate pruned graph: JAGUAR and PUMA
        # score 1/3; PANDA and TOYOTA score 1/4.  Notably the literal
        # Eq. 1 variant puts the homographs *above* the unambiguous
        # values here — the instability the paper's §3.3 warns about.
        g = build_graph(figure1_lake, min_value_degree=2)
        scores = lcc_score_map(g, variant="value-neighbors")
        assert scores["JAGUAR"] == pytest.approx(1 / 3)
        assert scores["PUMA"] == pytest.approx(1 / 3)
        assert scores["PANDA"] == pytest.approx(1 / 4)
        assert scores["TOYOTA"] == pytest.approx(1 / 4)


class TestValidation:
    def test_unknown_variant(self, figure1_lake):
        g = build_graph(figure1_lake)
        with pytest.raises(ValueError):
            lcc_scores(g, variant="bogus")

    def test_scores_bounded(self, figure1_lake):
        g = build_graph(figure1_lake)
        for variant in ("attribute-jaccard", "value-neighbors"):
            scores = lcc_scores(g, variant=variant)
            assert np.all(scores >= 0.0)
            assert np.all(scores <= 1.0)
