"""Tests for TUS-I homograph removal and injection (§4.3)."""

import pytest

from repro.bench.ground_truth import label_lake
from repro.bench.injection import (
    ForgeConfig,
    InjectionConfig,
    InjectionError,
    forge_homoglyphs,
    inject_homographs,
    injection_recovery,
    remove_homographs,
)
from repro.bench.tus import TUSConfig, generate_tus
from repro.core.confusables import SkeletonIndex, skeleton
from repro.core.normalize import normalize_value
from repro.datalake.profiling import value_attribute_index


@pytest.fixture(scope="module")
def tus():
    return generate_tus(TUSConfig.small(seed=1))


@pytest.fixture(scope="module")
def clean(tus):
    lake, groups = remove_homographs(tus)
    return lake, groups


class TestRemoveHomographs:
    def test_no_homographs_remain(self, tus, clean):
        lake, groups = clean
        truth = label_lake(lake, groups)
        assert truth.homographs == set()

    def test_table_shapes_preserved(self, tus, clean):
        lake, _ = clean
        assert len(lake) == len(tus.lake)
        for name in tus.lake.table_names:
            assert lake.table(name).num_rows == tus.lake.table(name).num_rows
            assert lake.table(name).columns == tus.lake.table(name).columns

    def test_unambiguous_values_untouched(self, tus, clean):
        lake, _ = clean
        original = value_attribute_index(tus.lake)
        cleaned = value_attribute_index(lake)
        untouched = [
            v for v in original
            if v not in tus.homographs
        ]
        for value in untouched[:100]:
            assert cleaned.get(value) == original[value]

    def test_disambiguated_forms_carry_domain(self, tus, clean):
        lake, groups = clean
        cleaned = value_attribute_index(lake)
        renamed = [v for v in cleaned if "@DOM_" in v]
        assert renamed, "expected disambiguated values in the clean lake"


class TestInjectHomographs:
    def test_injected_values_present(self, clean):
        lake, groups = clean
        inj = inject_homographs(
            lake, groups, InjectionConfig(num_homographs=10, seed=0)
        )
        index = value_attribute_index(inj.lake)
        for token in inj.injected_values:
            assert token in index

    def test_injected_have_requested_meanings(self, clean):
        lake, groups = clean
        for meanings in (2, 3):
            inj = inject_homographs(
                lake, groups,
                InjectionConfig(num_homographs=8, meanings=meanings, seed=1),
            )
            truth = label_lake(inj.lake, groups)
            for token in inj.injected_values:
                assert truth.meanings[token] == meanings, token

    def test_injected_are_only_homographs(self, clean):
        lake, groups = clean
        inj = inject_homographs(
            lake, groups, InjectionConfig(num_homographs=10, seed=2)
        )
        truth = label_lake(inj.lake, groups)
        assert truth.homographs == inj.injected_set

    def test_replaced_values_gone(self, clean):
        lake, groups = clean
        inj = inject_homographs(
            lake, groups, InjectionConfig(num_homographs=10, seed=3)
        )
        index = value_attribute_index(inj.lake)
        for token, originals in inj.replaced.items():
            for value, _domain in originals:
                assert value not in index

    def test_replaced_respect_min_length(self, clean):
        lake, groups = clean
        inj = inject_homographs(
            lake, groups,
            InjectionConfig(num_homographs=10, min_value_length=5, seed=4),
        )
        for originals in inj.replaced.values():
            for value, _domain in originals:
                assert len(value) >= 5

    def test_replaced_come_from_distinct_domains(self, clean):
        lake, groups = clean
        inj = inject_homographs(
            lake, groups, InjectionConfig(num_homographs=10, meanings=3, seed=5)
        )
        for originals in inj.replaced.values():
            domains = [d for _v, d in originals]
            assert len(set(domains)) == len(domains) == 3

    def test_input_lake_unmodified(self, clean):
        lake, groups = clean
        before = value_attribute_index(lake)
        inject_homographs(lake, groups, InjectionConfig(seed=6))
        after = value_attribute_index(lake)
        assert before == after

    def test_cardinality_threshold_restricts_columns(self, clean):
        lake, groups = clean
        sizes = {
            c.qualified_name: c.distinct_count()
            for c in lake.iter_attributes()
        }
        threshold = sorted(sizes.values())[len(sizes) // 2]  # median
        inj = inject_homographs(
            lake, groups,
            InjectionConfig(
                num_homographs=5, min_cardinality=threshold, seed=7
            ),
        )
        index = value_attribute_index(lake)
        for originals in inj.replaced.values():
            for value, _domain in originals:
                # The value must live in some attribute of distinct
                # count above the threshold (the |N(v)| lower bound).
                assert any(
                    sizes[attr] - 1 >= threshold for attr in index[value]
                )


class TestValidation:
    def test_meanings_below_two_rejected(self, clean):
        lake, groups = clean
        with pytest.raises(InjectionError):
            inject_homographs(lake, groups, InjectionConfig(meanings=1))

    def test_zero_homographs_rejected(self, clean):
        lake, groups = clean
        with pytest.raises(InjectionError):
            inject_homographs(
                lake, groups, InjectionConfig(num_homographs=0)
            )

    def test_impossible_cardinality_rejected(self, clean):
        lake, groups = clean
        with pytest.raises(InjectionError):
            inject_homographs(
                lake, groups,
                InjectionConfig(min_cardinality=10**9),
            )


class TestInjectionRecovery:
    def test_full_recovery(self, clean):
        lake, groups = clean
        inj = inject_homographs(
            lake, groups, InjectionConfig(num_homographs=5, seed=8)
        )
        ranking = list(inj.injected_values) + ["OTHER"]
        assert injection_recovery(inj, ranking) == 1.0

    def test_partial_recovery(self, clean):
        lake, groups = clean
        inj = inject_homographs(
            lake, groups, InjectionConfig(num_homographs=4, seed=9)
        )
        ranking = inj.injected_values[:2] + ["A", "B"]
        assert injection_recovery(inj, ranking) == 0.5

    def test_custom_k(self, clean):
        lake, groups = clean
        inj = inject_homographs(
            lake, groups, InjectionConfig(num_homographs=4, seed=10)
        )
        ranking = ["A"] + inj.injected_values
        assert injection_recovery(inj, ranking, k=1) == 0.0
        assert injection_recovery(inj, ranking, k=5) == 1.0


@pytest.fixture(scope="module")
def forged(clean):
    lake, groups = clean
    return forge_homoglyphs(
        lake, groups, ForgeConfig(num_forgeries=6, seed=0)
    )


class TestForgeHomoglyphs:
    def test_fixed_seed_is_reproducible(self, clean, forged):
        lake, groups = clean
        again = forge_homoglyphs(
            lake, groups, ForgeConfig(num_forgeries=6, seed=0)
        )
        assert again.forgeries == forged.forgeries

    def test_different_seed_differs(self, clean, forged):
        lake, groups = clean
        other = forge_homoglyphs(
            lake, groups, ForgeConfig(num_forgeries=6, seed=1)
        )
        assert other.forgeries != forged.forgeries

    def test_variants_are_distinct_but_share_skeletons(self, forged):
        for forgery in forged.forgeries:
            assert forgery.variant != forgery.source
            assert normalize_value(forgery.variant) == forgery.variant
            assert skeleton(forgery.variant) == skeleton(forgery.source)
            assert skeleton(forgery.source) == forgery.source

    def test_variants_replace_their_values_in_the_lake(self, forged):
        values = set()
        for column in forged.lake.iter_attributes():
            for raw in column.distinct_values():
                values.add(normalize_value(raw))
        for forgery in forged.forgeries:
            assert forgery.variant in values
            assert forgery.source in values
            assert forgery.replaced not in values

    def test_ground_truth_labels_exactly_the_forged_set(self, forged):
        index = SkeletonIndex.from_lake(forged.lake)
        expected = {}
        for forgery in forged.forgeries:
            expected.setdefault(
                forgery.source, {forgery.source}
            ).add(forgery.variant)
        collisions = {
            skel: set(members)
            for skel, members in index.collisions().items()
        }
        # Exactly the planted collisions — nothing leaks into (or out
        # of) untouched values.
        assert collisions == expected

    def test_untouched_tables_keep_their_cells(self, clean, forged):
        lake, _groups = clean
        replaced = {f.replaced for f in forged.forgeries}
        for table in lake:
            new_table = forged.lake.table(table.name)
            for row, new_row in zip(table.rows, new_table.rows):
                for cell, new_cell in zip(row, new_row):
                    if normalize_value(cell) not in replaced:
                        assert new_cell == cell

    def test_targets_and_forged_values(self, forged):
        assert forged.forged_set == {
            f.variant for f in forged.forgeries
        }
        assert forged.targets == forged.anchors | forged.forged_set
        manifest = forged.to_manifest()
        assert [
            entry["variant"] for entry in manifest["forgeries"]
        ] == forged.forged_values

    def test_style_restriction_is_honored(self, clean):
        lake, groups = clean
        greek_only = forge_homoglyphs(
            lake, groups,
            ForgeConfig(num_forgeries=3, styles=("greek",), seed=2),
        )
        assert {f.style for f in greek_only.forgeries} == {"greek"}

    def test_meanings_above_two_mint_multiple_variants(self, clean):
        lake, groups = clean
        forged3 = forge_homoglyphs(
            lake, groups,
            ForgeConfig(num_forgeries=2, meanings=3, seed=3),
        )
        assert len(forged3.forgeries) == 4
        per_anchor = {}
        for forgery in forged3.forgeries:
            per_anchor.setdefault(forgery.source, []).append(
                forgery.variant
            )
        for variants in per_anchor.values():
            assert len(variants) == len(set(variants)) == 2

    def test_exclude_keeps_values_out(self, clean):
        lake, groups = clean
        baseline = forge_homoglyphs(
            lake, groups, ForgeConfig(num_forgeries=2, seed=4)
        )
        off_limits = baseline.anchors | {
            f.replaced for f in baseline.forgeries
        }
        redone = forge_homoglyphs(
            lake, groups, ForgeConfig(num_forgeries=2, seed=4),
            exclude=off_limits,
        )
        chosen = redone.anchors | {f.replaced for f in redone.forgeries}
        assert chosen & off_limits == set()

    def test_bad_configs_rejected(self, clean):
        lake, groups = clean
        with pytest.raises(InjectionError):
            forge_homoglyphs(lake, groups, ForgeConfig(meanings=1))
        with pytest.raises(InjectionError):
            forge_homoglyphs(lake, groups, ForgeConfig(num_forgeries=0))
        with pytest.raises(InjectionError):
            forge_homoglyphs(
                lake, groups, ForgeConfig(styles=("zalgo",))
            )
        with pytest.raises(InjectionError):
            forge_homoglyphs(
                lake, groups, ForgeConfig(min_cardinality=10**9)
            )
