"""Unit tests for repro.core.betweenness.

The exact implementation is cross-checked against networkx on several
graph shapes, and against the paper's Example 3.6 scores.
"""

import networkx as nx
import numpy as np
import pytest

from repro.core.betweenness import betweenness_score_map, betweenness_scores
from repro.core.builder import build_graph, build_graph_from_columns
from repro.core.graph import BipartiteGraph


def nx_scores(graph):
    """Reference betweenness from networkx, aligned to our node ids."""
    nxg = graph.to_networkx()
    raw = nx.betweenness_centrality(nxg, normalized=True)
    out = np.zeros(graph.num_nodes)
    for v in range(graph.num_values):
        out[v] = raw[("val", graph.value_name(v))]
    for a in range(graph.num_values, graph.num_nodes):
        out[a] = raw[("attr", graph.attribute_name(a))]
    return out


class TestExample36Calibration:
    def test_paper_scores(self, figure1_lake):
        g = build_graph(figure1_lake)
        bc = betweenness_score_map(g)
        assert bc["JAGUAR"] == pytest.approx(0.0249, abs=0.0005)
        assert bc["PUMA"] == pytest.approx(0.0031, abs=0.0005)
        assert bc["TOYOTA"] == pytest.approx(0.0024, abs=0.0005)
        assert bc["PANDA"] == pytest.approx(0.0024, abs=0.0005)

    def test_homograph_ranks_first(self, figure1_lake):
        g = build_graph(figure1_lake)
        bc = betweenness_score_map(g)
        assert max(bc, key=bc.get) == "JAGUAR"


class TestAgainstNetworkx:
    def test_figure1_exact_match(self, figure1_lake):
        g = build_graph(figure1_lake)
        ours = betweenness_scores(g)
        np.testing.assert_allclose(ours, nx_scores(g), atol=1e-12)

    def test_path_graph(self):
        # A chain v1 - A - v2 - B - v3: attribute nodes and the middle
        # value carry all the betweenness.
        g = BipartiteGraph(
            ["v1", "v2", "v3"], ["A", "B"],
            [(0, 0), (1, 0), (1, 1), (2, 1)],
        )
        np.testing.assert_allclose(
            betweenness_scores(g), nx_scores(g), atol=1e-12
        )

    def test_star(self):
        g = build_graph_from_columns({"A": [f"v{i}" for i in range(8)]})
        np.testing.assert_allclose(
            betweenness_scores(g), nx_scores(g), atol=1e-12
        )

    def test_disconnected_components(self):
        g = build_graph_from_columns(
            {"A": ["a", "b"], "B": ["x", "y", "z"]}
        )
        np.testing.assert_allclose(
            betweenness_scores(g), nx_scores(g), atol=1e-12
        )

    def test_random_bipartite(self):
        rng = np.random.default_rng(42)
        columns = {
            f"A{j}": [f"v{rng.integers(0, 30)}" for _ in range(12)]
            for j in range(10)
        }
        g = build_graph_from_columns(columns)
        np.testing.assert_allclose(
            betweenness_scores(g), nx_scores(g), atol=1e-12
        )

    def test_unnormalized_matches_networkx(self, figure1_lake):
        g = build_graph(figure1_lake)
        ours = betweenness_scores(g, normalized=False)
        nxg = g.to_networkx()
        raw = nx.betweenness_centrality(nxg, normalized=False)
        ref = np.array(
            [raw[("val", g.value_name(v))] for v in range(g.num_values)]
        )
        np.testing.assert_allclose(ours[: g.num_values], ref, atol=1e-9)


class TestSampling:
    def test_full_sample_equals_exact(self, figure1_lake):
        g = build_graph(figure1_lake)
        exact = betweenness_scores(g)
        sampled = betweenness_scores(g, sample_size=g.num_nodes, seed=0)
        np.testing.assert_allclose(sampled, exact, atol=1e-12)

    def test_oversized_sample_clamps_to_exact(self, figure1_lake):
        g = build_graph(figure1_lake)
        exact = betweenness_scores(g)
        sampled = betweenness_scores(g, sample_size=10**6, seed=0)
        np.testing.assert_allclose(sampled, exact, atol=1e-12)

    def test_deterministic_under_seed(self, figure1_lake):
        g = build_graph(figure1_lake)
        a = betweenness_scores(g, sample_size=10, seed=7)
        b = betweenness_scores(g, sample_size=10, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_sampling_unbiased_on_average(self, figure1_lake):
        g = build_graph(figure1_lake)
        exact = betweenness_scores(g)
        estimates = np.mean(
            [
                betweenness_scores(g, sample_size=12, seed=s)
                for s in range(40)
            ],
            axis=0,
        )
        # Mean of many unbiased estimates approaches the exact scores.
        assert np.max(np.abs(estimates - exact)) < 0.02

    def test_sampled_top_value_still_jaguar(self, figure1_lake):
        g = build_graph(figure1_lake)
        bc = betweenness_score_map(g, sample_size=25, seed=3)
        assert max(bc, key=bc.get) == "JAGUAR"

    def test_invalid_sample_size(self, figure1_lake):
        g = build_graph(figure1_lake)
        with pytest.raises(ValueError):
            betweenness_scores(g, sample_size=0)


class TestEndpointModes:
    def test_values_only_zeroes_attribute_endpoints(self):
        # A path v1 - A - v2: with value endpoints only, A still carries
        # the v1<->v2 paths, but scores differ from all-endpoints mode.
        g = BipartiteGraph(["v1", "v2"], ["A"], [(0, 0), (1, 0)])
        all_mode = betweenness_scores(g, normalized=False)
        val_mode = betweenness_scores(g, normalized=False, endpoints="values")
        a = g.attribute_id("A")
        assert val_mode[a] == pytest.approx(1.0)  # one v-pair through A
        assert all_mode[a] == pytest.approx(1.0)
        # v1 lies on no paths between eligible endpoints in either mode
        assert val_mode[0] == 0.0

    def test_values_mode_excludes_attribute_pairs(self, figure1_lake):
        g = build_graph(figure1_lake)
        all_mode = betweenness_scores(g, normalized=False)
        val_mode = betweenness_scores(g, normalized=False, endpoints="values")
        # Restricting endpoints can only remove path pairs.
        assert np.all(val_mode <= all_mode + 1e-9)

    def test_values_mode_still_ranks_jaguar_first(self, figure1_lake):
        g = build_graph(figure1_lake)
        bc = betweenness_score_map(g, endpoints="values")
        assert max(bc, key=bc.get) == "JAGUAR"

    def test_unknown_mode(self, figure1_lake):
        g = build_graph(figure1_lake)
        with pytest.raises(ValueError):
            betweenness_scores(g, endpoints="bogus")


class TestEdgeCases:
    def test_empty_graph(self):
        g = BipartiteGraph([], [], [])
        assert betweenness_scores(g).size == 0

    def test_single_edge(self):
        g = BipartiteGraph(["v"], ["A"], [(0, 0)])
        scores = betweenness_scores(g)
        np.testing.assert_allclose(scores, 0.0)

    def test_isolated_nodes(self):
        g = BipartiteGraph(["v", "w"], ["A"], [(0, 0)])
        scores = betweenness_scores(g)
        np.testing.assert_allclose(scores, 0.0)
