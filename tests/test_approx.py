"""Tests for the Riondato–Kornaropoulos estimator and degree sampling."""

import numpy as np
import pytest

from repro.core.approx import (
    riondato_kornaropoulos_bc,
    sample_size_bound,
)
from repro.core.betweenness import betweenness_scores
from repro.core.builder import build_graph, build_graph_from_columns


class TestSampleSizeBound:
    def test_grows_with_precision(self):
        loose = sample_size_bound(0.1, 0.1, 10)
        tight = sample_size_bound(0.01, 0.1, 10)
        assert tight > loose

    def test_grows_with_confidence(self):
        assert sample_size_bound(0.05, 0.01, 10) > \
            sample_size_bound(0.05, 0.5, 10)

    def test_grows_with_diameter(self):
        assert sample_size_bound(0.05, 0.1, 1000) >= \
            sample_size_bound(0.05, 0.1, 4)

    def test_minimum_one(self):
        assert sample_size_bound(0.99, 0.99, 3) >= 1


class TestRiondatoKornaropoulos:
    def test_close_to_exact_on_figure1(self, figure1_lake):
        graph = build_graph(figure1_lake)
        exact = betweenness_scores(graph)
        estimate = riondato_kornaropoulos_bc(
            graph, epsilon=0.03, delta=0.1, seed=1
        )
        assert np.max(np.abs(estimate - exact)) < 0.03

    def test_top_value_matches_exact(self, figure1_lake):
        graph = build_graph(figure1_lake)
        estimate = riondato_kornaropoulos_bc(
            graph, epsilon=0.03, delta=0.1, seed=2
        )
        top = int(np.argmax(estimate[: graph.num_values]))
        assert graph.value_name(top) == "JAGUAR"

    def test_max_samples_cap(self, figure1_lake):
        graph = build_graph(figure1_lake)
        estimate = riondato_kornaropoulos_bc(
            graph, epsilon=0.01, delta=0.1, seed=3, max_samples=50
        )
        assert np.all(estimate >= 0.0)

    def test_deterministic_given_seed(self, figure1_lake):
        graph = build_graph(figure1_lake)
        a = riondato_kornaropoulos_bc(graph, seed=7, max_samples=200)
        b = riondato_kornaropoulos_bc(graph, seed=7, max_samples=200)
        np.testing.assert_array_equal(a, b)

    def test_tiny_graph_zero(self):
        graph = build_graph_from_columns({"A": ["x"]})
        estimate = riondato_kornaropoulos_bc(graph, seed=0)
        np.testing.assert_allclose(estimate, 0.0)

    def test_disconnected_pairs_skipped(self):
        graph = build_graph_from_columns(
            {"A": ["a", "b"], "B": ["x", "y"]}
        )
        # Cross-component pairs are skipped without error; the only
        # shortest paths run value -> attribute -> value, so value
        # nodes score 0 while the two attribute hubs may score > 0.
        estimate = riondato_kornaropoulos_bc(graph, seed=0, max_samples=300)
        np.testing.assert_allclose(estimate[: graph.num_values], 0.0)
        assert np.all(estimate >= 0.0)

    def test_invalid_parameters(self, figure1_lake):
        graph = build_graph(figure1_lake)
        with pytest.raises(ValueError):
            riondato_kornaropoulos_bc(graph, epsilon=0.0)
        with pytest.raises(ValueError):
            riondato_kornaropoulos_bc(graph, delta=1.5)


class TestDegreeStrategy:
    def test_unbiased_on_average(self, figure1_lake):
        graph = build_graph(figure1_lake)
        exact = betweenness_scores(graph)
        estimates = np.mean(
            [
                betweenness_scores(
                    graph, sample_size=15, seed=s, strategy="degree"
                )
                for s in range(50)
            ],
            axis=0,
        )
        assert np.max(np.abs(estimates - exact)) < 0.02

    def test_single_run_nonnegative(self, figure1_lake):
        graph = build_graph(figure1_lake)
        scores = betweenness_scores(
            graph, sample_size=10, seed=1, strategy="degree"
        )
        assert np.all(scores >= -1e-12)

    def test_unknown_strategy(self, figure1_lake):
        graph = build_graph(figure1_lake)
        with pytest.raises(ValueError):
            betweenness_scores(graph, sample_size=5, strategy="pagerank")

    def test_exact_ignores_strategy(self, figure1_lake):
        graph = build_graph(figure1_lake)
        a = betweenness_scores(graph, strategy="uniform")
        b = betweenness_scores(graph, strategy="degree")
        np.testing.assert_allclose(a, b)
