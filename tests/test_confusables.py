"""Property-based tests for the confusable-skeleton layer.

The pinned contract: ``skeleton`` is idempotent on arbitrary input,
the identity on pure-ASCII values without letter-flanked digits
(which is what keeps ``skeleton_betweenness`` a no-op on clean
lakes), order-insensitive with respect to ``normalize_value``, and
folds every entry of the curated confusable map onto its declared
target.
"""

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.confusables import (
    CONFUSABLES,
    CYRILLIC_CONFUSABLES,
    FULLWIDTH_CONFUSABLES,
    GREEK_CONFUSABLES,
    LEET_CONFUSABLES,
    STYLES,
    SkeletonIndex,
    skeleton,
    substitutions,
)
from repro.core.normalize import normalize_value

# Mixed alphabet: ASCII, confusables, digits, whitespace — enough to
# reach every skeleton code path.
mixed_alphabet = (
    string.ascii_letters
    + string.digits
    + " \t.-_@"
    + "".join(CONFUSABLES)
)
mixed_strategy = st.text(alphabet=mixed_alphabet, max_size=24)
ascii_no_digit_strategy = st.text(
    alphabet=string.ascii_letters + " .-_@", max_size=24
)


class TestSkeletonProperties:
    @given(mixed_strategy)
    def test_idempotent(self, raw):
        once = skeleton(raw)
        assert skeleton(once) == once

    @given(st.text(max_size=30))
    def test_idempotent_on_arbitrary_text(self, raw):
        once = skeleton(raw)
        assert skeleton(once) == once

    @given(ascii_no_digit_strategy)
    def test_ascii_fixpoint(self, raw):
        # Pure-ASCII, digit-free values are their own skeleton (after
        # plain normalization) — the clean-lake no-op guarantee.
        assert skeleton(raw) == normalize_value(raw)

    @given(mixed_strategy)
    def test_composes_with_normalize_either_order(self, raw):
        assert skeleton(normalize_value(raw)) == skeleton(raw)
        assert normalize_value(skeleton(raw)) == skeleton(raw)

    @given(mixed_strategy)
    def test_output_is_ascii(self, raw):
        assert skeleton(raw).isascii()

    def test_blank_input_maps_to_empty(self):
        assert skeleton("") == ""
        assert skeleton("   \t ") == ""


class TestConfusableMap:
    @pytest.mark.parametrize(
        "source,target", sorted(CONFUSABLES.items())
    )
    def test_every_entry_round_trips_to_its_target(self, source, target):
        assert skeleton(source) == target

    def test_map_keys_are_normalization_stable(self):
        # A key normalize_value rewrites (e.g. fullwidth lowercase)
        # could never be seen by the fold; such entries are banned.
        for source in CONFUSABLES:
            assert normalize_value(source) == source

    def test_targets_are_ascii_fixpoints(self):
        for target in CONFUSABLES.values():
            assert target.isascii()
            assert skeleton(target) == target

    def test_styles_are_disjoint_unions_of_the_map(self):
        merged = {}
        for style_map in (
            GREEK_CONFUSABLES,
            CYRILLIC_CONFUSABLES,
            FULLWIDTH_CONFUSABLES,
        ):
            for key in style_map:
                assert key not in merged
            merged.update(style_map)
        assert merged == CONFUSABLES


class TestLeetFolding:
    @pytest.mark.parametrize(
        "digit,letter", sorted(LEET_CONFUSABLES.items())
    )
    def test_flanked_digit_folds(self, digit, letter):
        assert skeleton(f"X{digit}Y") == f"X{letter}Y"

    @pytest.mark.parametrize("raw", ["2021", "12.34", "A1", "1A", "6'2"])
    def test_unflanked_digits_survive(self, raw):
        assert skeleton(raw) == normalize_value(raw)

    def test_digit_runs_never_fold(self):
        # Neighboring digits block each other, which is what makes a
        # single fold pass idempotent.
        assert skeleton("J44M") == "J44M"


class TestSubstitutions:
    @pytest.mark.parametrize("style", STYLES)
    def test_inverse_maps_fold_back(self, style):
        for target, lookalikes in substitutions(style).items():
            for lookalike in lookalikes:
                if style == "leet":
                    assert skeleton(f"X{lookalike}Y") == f"X{target}Y"
                else:
                    assert skeleton(lookalike) == target

    def test_unknown_style_raises(self):
        with pytest.raises(ValueError, match="unknown substitution"):
            substitutions("zalgo")


class TestSkeletonIndex:
    def test_groups_confusable_values(self):
        index = SkeletonIndex(
            ["Paris", "ΡARIS", "London", "J4GUAR", "JAGUAR", ""]
        )
        assert len(index) == 5
        assert index.num_collisions == 2
        assert index.collisions() == {
            "PARIS": ("PARIS", "ΡARIS"),
            "JAGUAR": ("J4GUAR", "JAGUAR"),
        }
        assert index.skeleton_of("ΡARIS") == "PARIS"
        assert index.members("LONDON") == ("LONDON",)
        assert "paris" in index
        assert "BERLIN" not in index

    def test_missing_value_raises(self):
        with pytest.raises(KeyError, match="not in the index"):
            SkeletonIndex(["A"]).skeleton_of("B")

    def test_from_lake_and_from_graph_agree(self, figure1_lake):
        from repro.core.builder import build_graph

        by_lake = SkeletonIndex.from_lake(figure1_lake)
        by_graph = SkeletonIndex.from_graph(build_graph(figure1_lake))
        assert by_lake.classes() == by_graph.classes()
        # Figure 1 is a clean ASCII lake: every class is a singleton.
        assert by_lake.num_collisions == 0
