"""Tests for the domainnet command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def csv_lake(tmp_path):
    (tmp_path / "zoo.csv").write_text(
        "animal,city\nJaguar,Memphis\nPanda,Atlanta\nJaguar,Boston\n"
        "Lemur,Boston\nOtter,Memphis\n"
    )
    (tmp_path / "cars.csv").write_text(
        "maker,model\nJaguar,XE\nToyota,Prius\nJaguar,F-Type\n"
        "Fiat,Panda2\nJaguar,XJ\n"
    )
    return tmp_path


class TestScan:
    def test_scan_prints_ranking(self, csv_lake, capsys):
        assert main(["scan", str(csv_lake), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "JAGUAR" in out
        assert "graph:" in out

    def test_scan_with_meanings(self, csv_lake, capsys):
        assert main(["scan", str(csv_lake), "--meanings"]) == 0
        out = capsys.readouterr().out
        assert "meaning(s)" in out

    def test_scan_with_errors_flag(self, csv_lake, capsys):
        assert main(["scan", str(csv_lake), "--errors"]) == 0
        out = capsys.readouterr().out
        assert "[genuine]" in out or "[error]" in out or \
            "[single-meaning]" in out

    def test_scan_lcc(self, csv_lake, capsys):
        assert main(["scan", str(csv_lake), "--measure", "lcc"]) == 0
        assert "lcc" in capsys.readouterr().out

    def test_scan_sampled(self, csv_lake, capsys):
        assert main(["scan", str(csv_lake), "--sample", "5"]) == 0
        assert "5 samples" in capsys.readouterr().out

    def test_scan_empty_directory(self, tmp_path, capsys):
        assert main(["scan", str(tmp_path)]) == 1


class TestScanJson:
    def test_json_payload_parses_as_response(self, csv_lake, capsys):
        import json

        from repro import DetectResponse

        assert main(["scan", str(csv_lake), "--json", "--top", "3"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["measure"] == "betweenness"
        assert len(payload["ranking"]) <= 3
        response = DetectResponse.from_json(out)
        assert "JAGUAR" in response.scores

    def test_json_suppresses_human_output(self, csv_lake, capsys):
        assert main(["scan", str(csv_lake), "--json"]) == 0
        out = capsys.readouterr().out
        assert "graph:" not in out

    def test_json_rejects_meanings_and_errors(self, csv_lake, capsys):
        assert main(["scan", str(csv_lake), "--json", "--meanings"]) == 2
        assert main(["scan", str(csv_lake), "--json", "--errors"]) == 2
        err = capsys.readouterr().err
        assert "--json" in err

    def test_no_prune_keeps_singletons(self, csv_lake, capsys):
        import json

        assert main(["scan", str(csv_lake), "--json", "--top", "100",
                     "--no-prune"]) == 0
        pruned_free = json.loads(capsys.readouterr().out)
        assert main(["scan", str(csv_lake), "--json", "--top", "100"]) == 0
        pruned = json.loads(capsys.readouterr().out)
        # "OTTER" occurs once in the lake: only --no-prune keeps it.
        values = {e["value"] for e in pruned_free["ranking"]}
        assert "OTTER" in values
        assert len(pruned_free["ranking"]) > len(pruned["ranking"])


class TestServePool:
    def test_keep_pool_scan_matches_plain_scan(self, csv_lake, capsys):
        import json

        assert main(["scan", str(csv_lake), "--json", "--top", "5"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main(["scan", str(csv_lake), "--json", "--top", "5",
                     "--jobs", "2", "--keep-pool"]) == 0
        pooled = json.loads(capsys.readouterr().out)
        assert pooled["request"]["execution"]["persistent"] is True
        assert [e["value"] for e in pooled["ranking"]] == \
            [e["value"] for e in plain["ranking"]]

    def test_keep_pool_with_one_job_still_keeps_a_pool(
        self, csv_lake, capsys
    ):
        import json

        # `auto` would collapse --jobs 1 to serial and silently drop
        # the flag; --keep-pool must force the process backend.
        assert main(["scan", str(csv_lake), "--json", "--top", "1",
                     "--jobs", "1", "--keep-pool"]) == 0
        payload = json.loads(capsys.readouterr().out)
        execution = payload["request"]["execution"]
        assert execution["backend"] == "process"
        assert execution["persistent"] is True
        assert execution["n_jobs"] == 1

    def test_serve_pool_lists_each_measure(self, csv_lake, capsys):
        assert main(["scan", str(csv_lake), "--top", "3",
                     "--serve-pool", "betweenness,lcc"]) == 0
        out = capsys.readouterr().out
        assert "== betweenness" in out
        assert "== lcc" in out

    def test_serve_pool_json_is_response_array(self, csv_lake, capsys):
        import json

        assert main(["scan", str(csv_lake), "--json", "--top", "2",
                     "--serve-pool", "lcc"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        assert payload[0]["measure"] == "lcc"

    def test_serve_pool_rejects_unknown_measure(self, csv_lake, capsys):
        assert main(["scan", str(csv_lake),
                     "--serve-pool", "nope"]) == 2
        assert "--serve-pool" in capsys.readouterr().err

    def test_serve_pool_rejects_annotations(self, csv_lake, capsys):
        assert main(["scan", str(csv_lake), "--serve-pool", "lcc",
                     "--meanings"]) == 2
        assert "--serve-pool" in capsys.readouterr().err


class TestStats:
    def test_stats_table(self, csv_lake, capsys):
        assert main(["stats", str(csv_lake)]) == 0
        out = capsys.readouterr().out
        assert "#Tables" in out
        assert " 2 " in out  # two tables


class TestSnapshotCommands:
    def test_build_and_info_round_trip(self, csv_lake, tmp_path, capsys):
        target = tmp_path / "snap"
        assert main(["snapshot", "build", str(csv_lake),
                     "-o", str(target), "--warm", "lcc"]) == 0
        out = capsys.readouterr().out
        assert "warmed lcc" in out
        assert "1 precomputed ranking(s)" in out
        assert main(["snapshot", "info", str(target)]) == 0
        import json

        manifest = json.loads(capsys.readouterr().out)
        assert manifest["format"] >= 1
        assert manifest["scores"] == 1

    def test_warmed_measure_matches_default_request(
        self, csv_lake, tmp_path
    ):
        # The warmed cache entry must be keyed like a client's plain
        # detect(measure=...) — sampling fields poison the cache key,
        # so build must not set them for unsampled measures.
        from repro import HomographIndex

        target = tmp_path / "snap"
        assert main(["snapshot", "build", str(csv_lake),
                     "-o", str(target), "--warm", "lcc,betweenness"]) == 0
        with HomographIndex.load(target) as loaded:
            assert loaded.detect(measure="lcc").cached
            assert loaded.detect(measure="betweenness").cached

    def test_build_rejects_unknown_warm_measure(self, csv_lake,
                                                tmp_path, capsys):
        assert main(["snapshot", "build", str(csv_lake),
                     "-o", str(tmp_path / "snap"),
                     "--warm", "page-rank"]) == 2
        assert "--warm expects" in capsys.readouterr().err

    def test_info_rejects_non_snapshot(self, tmp_path, capsys):
        assert main(["snapshot", "info", str(tmp_path)]) == 1
        assert "SnapshotCorruptionError" in capsys.readouterr().err


class TestGenerate:
    def test_generate_sb(self, tmp_path, capsys):
        out_dir = tmp_path / "sb"
        assert main(["generate", "sb", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "13 tables" in out
        assert "55 ground-truth homographs" in out
        assert (out_dir / "countries.csv").exists()

    def test_generate_tus(self, tmp_path, capsys):
        out_dir = tmp_path / "tus"
        assert main(["generate", "tus", str(out_dir), "--seed", "1"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert any(out_dir.glob("*.csv"))

    def test_generated_lake_scannable(self, tmp_path, capsys):
        out_dir = tmp_path / "sb"
        main(["generate", "sb", str(out_dir)])
        capsys.readouterr()
        assert main(["scan", str(out_dir), "--top", "5",
                     "--sample", "300"]) == 0
        out = capsys.readouterr().out
        assert "1." in out


class TestServeMounts:
    def _mounts(self, argv):
        from repro.cli import _serve_mounts, build_parser

        return _serve_mounts(build_parser().parse_args(["serve"] + argv))

    def test_positional_directories_mount_first(self, capsys):
        # The DIR help text promises the first positional directory
        # is the default lake — --lake entries must not jump ahead.
        mounts = self._mounts(["zoo", "--lake", "cars=cars-dir"])
        assert mounts == [("zoo", "zoo"), ("cars", "cars-dir")]

    def test_basenames_deduplicate(self):
        mounts = self._mounts(["a/lake", "b/lake", "--lake", "x=y"])
        assert [name for name, _ in mounts] == ["lake", "lake-2", "x"]

    def test_bad_lake_flag_is_rejected(self, capsys):
        assert self._mounts(["--lake", "noequals"]) is None
        assert "--lake expects NAME=DIR" in capsys.readouterr().err
        assert self._mounts([]) is None
        assert "nothing to serve" in capsys.readouterr().err

    def test_duplicate_explicit_name_is_rejected(self, capsys):
        assert self._mounts(["zoo", "--lake", "zoo=elsewhere"]) is None
        assert "duplicate lake name" in capsys.readouterr().err

    def test_missing_directory_is_a_clean_error(self, capsys):
        # A traceback here would also leak already-attached indexes.
        assert main(["serve", "/no/such/dir", "--port", "0"]) == 1
        err = capsys.readouterr().err
        assert "/no/such/dir" in err

    def test_nonpositive_job_ttl_is_rejected(self, csv_lake, capsys):
        assert main(["serve", str(csv_lake), "--port", "0",
                     "--job-ttl", "0"]) == 2
        assert "--job-ttl" in capsys.readouterr().err


class TestForge:
    def test_forge_tus_writes_lake_and_truth(self, tmp_path, capsys):
        import json

        out = tmp_path / "forged"
        assert main([
            "forge", "tus", str(out), "--forgeries", "3", "--seed", "0",
        ]) == 0
        stdout = capsys.readouterr().out
        assert "3 forged variants" in stdout
        manifest = json.loads((out / "forge_truth.json").read_text())
        assert len(manifest["forgeries"]) == 3
        assert list(out.glob("*.csv"))

    def test_forged_lake_scannable_with_skeleton_measure(
        self, tmp_path, capsys
    ):
        out = tmp_path / "forged"
        assert main([
            "forge", "tus", str(out), "--forgeries", "2", "--seed", "0",
        ]) == 0
        capsys.readouterr()
        assert main([
            "scan", str(out),
            "--measure", "skeleton_betweenness", "--top", "4",
        ]) == 0
        import json

        manifest = json.loads((out / "forge_truth.json").read_text())
        stdout = capsys.readouterr().out
        # Every planted variant surfaces at the top of the ranking.
        for entry in manifest["forgeries"]:
            assert repr(entry["variant"]) in stdout

    def test_style_restriction_flows_through(self, tmp_path, capsys):
        import json

        out = tmp_path / "forged"
        assert main([
            "forge", "tus", str(out),
            "--forgeries", "2", "--styles", "greek", "--seed", "1",
        ]) == 0
        manifest = json.loads((out / "forge_truth.json").read_text())
        assert {e["style"] for e in manifest["forgeries"]} == {"greek"}

    def test_unknown_style_is_a_clean_error(self, tmp_path, capsys):
        assert main([
            "forge", "tus", str(tmp_path / "x"), "--styles", "zalgo",
        ]) == 2
        err = capsys.readouterr().err
        assert "--styles expects" in err

    def test_impossible_request_is_a_clean_error(self, tmp_path, capsys):
        assert main([
            "forge", "tus", str(tmp_path / "x"),
            "--forgeries", "100000",
        ]) == 1
        assert "cannot forge" in capsys.readouterr().err


class TestParser:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_measure(self, csv_lake):
        with pytest.raises(SystemExit):
            main(["scan", str(csv_lake), "--measure", "pagerank"])
