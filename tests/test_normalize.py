"""Unit tests for repro.core.normalize."""

from repro.core.normalize import normalize_column, normalize_value


class TestNormalizeValue:
    def test_uppercases(self):
        assert normalize_value("jaguar") == "JAGUAR"

    def test_strips_whitespace(self):
        assert normalize_value("  Jaguar \t") == "JAGUAR"

    def test_collapses_internal_runs(self):
        assert normalize_value("San   Diego") == "SAN DIEGO"
        assert normalize_value("San\tDiego") == "SAN DIEGO"

    def test_empty_and_blank(self):
        assert normalize_value("") == ""
        assert normalize_value("   ") == ""

    def test_non_letters_preserved(self):
        assert normalize_value("01223") == "01223"
        assert normalize_value(".") == "."
        assert normalize_value("25.80") == "25.80"


class TestNormalizeColumn:
    def test_dedupes_preserving_order(self):
        assert normalize_column(["b", "a", "B", "a "]) == ["B", "A"]

    def test_drops_blanks(self):
        assert normalize_column(["", " ", "x"]) == ["X"]

    def test_case_variants_collapse(self):
        assert normalize_column(["Jaguar", "JAGUAR", "jaguar"]) == ["JAGUAR"]

    def test_empty_column(self):
        assert normalize_column([]) == []
