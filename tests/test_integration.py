"""End-to-end integration tests across module boundaries."""

import numpy as np
import pytest

from repro import DomainNet, dump_lake, load_lake
from repro.bench.synthetic import SBConfig, generate_sb
from repro.bench.tus import TUSConfig, generate_tus
from repro.core.builder import build_graph
from repro.core.communities import estimate_meanings
from repro.eval.metrics import precision_recall_at_k


class TestCsvRoundtripPipeline:
    """Benchmark -> CSV files -> fresh lake -> detection."""

    def test_sb_roundtrip_preserves_detection(self, tmp_path):
        sb = generate_sb(SBConfig(rows=200, seed=5))
        dump_lake(sb.lake, tmp_path)
        reloaded = load_lake(tmp_path)

        original = DomainNet.from_lake(sb.lake)
        roundtrip = DomainNet.from_lake(reloaded)
        assert original.graph.num_values == roundtrip.graph.num_values
        assert original.graph.num_edges == roundtrip.graph.num_edges

        a = original.detect(measure="betweenness")
        b = roundtrip.detect(measure="betweenness")
        assert a.ranking.values[:20] == b.ranking.values[:20]

    def test_unicode_values_survive(self, tmp_path):
        from repro import DataLake, Table

        lake = DataLake([
            Table.from_columns("t1", {
                "city": ["Zürich", "São Paulo", "Kraków", "Zürich"],
            }),
            Table.from_columns("t2", {
                "name": ["Zürich", "Müller", "Dvořák"],
            }),
        ])
        dump_lake(lake, tmp_path)
        reloaded = load_lake(tmp_path)
        graph = build_graph(reloaded)
        assert graph.has_value("ZÜRICH")
        assert graph.degree(graph.value_id("ZÜRICH")) == 2

    def test_cells_with_delimiters_and_newlines(self, tmp_path):
        from repro import DataLake, Table

        tricky = 'a,"quoted", and\nnewline'
        lake = DataLake([
            Table.from_columns("t", {"c": [tricky, "plain"]}),
        ])
        dump_lake(lake, tmp_path)
        reloaded = load_lake(tmp_path)
        assert reloaded.table("t").rows[0][0] == tricky


class TestFullPipelineQuality:
    def test_sb_detection_quality_small(self):
        sb = generate_sb(SBConfig(rows=300, seed=2))
        detector = DomainNet.from_lake(sb.lake)
        result = detector.detect(measure="betweenness")
        pr = precision_recall_at_k(result.ranking.values, sb.homographs, 30)
        assert pr.precision >= 0.8

    def test_tus_detection_with_all_strategies(self):
        tus = generate_tus(TUSConfig.small(seed=6))
        detector = DomainNet.from_lake(tus.lake)
        hom = tus.homographs
        base_rate = len(hom) / detector.graph.num_values
        for kwargs in (
            {"sample_size": 300, "seed": 1},
            {"sample_size": 300, "seed": 1, "endpoints": "values"},
        ):
            result = detector.detect(measure="betweenness", **kwargs)
            pr = precision_recall_at_k(result.ranking.values, hom, 50)
            assert pr.precision > 2 * base_rate, kwargs

    def test_meanings_agree_with_ground_truth_on_tus(self):
        tus = generate_tus(TUSConfig.small(seed=7))
        graph = build_graph(tus.lake)
        truth = tus.ground_truth
        sample = sorted(tus.homographs)[:15]
        close = 0
        for value in sample:
            estimate = estimate_meanings(graph, value)
            if abs(estimate.num_meanings - truth.meanings[value]) <= 1:
                close += 1
        assert close >= 10


class TestDeterminismEndToEnd:
    def test_full_pipeline_is_reproducible(self):
        results = []
        for _ in range(2):
            sb = generate_sb(SBConfig(rows=150, seed=9))
            detector = DomainNet.from_lake(sb.lake)
            result = detector.detect(
                measure="betweenness", sample_size=200, seed=3
            )
            results.append(result.ranking.values[:25])
        assert results[0] == results[1]

    def test_scores_independent_of_table_insertion_order(self):
        sb = generate_sb(SBConfig(rows=150, seed=9))
        from repro import DataLake

        reversed_lake = DataLake(
            [sb.lake.table(n) for n in reversed(sb.lake.table_names)]
        )
        a = DomainNet.from_lake(sb.lake).detect()
        b = DomainNet.from_lake(reversed_lake).detect()
        for value in a.ranking.top_values(30):
            assert a.scores[value] == pytest.approx(
                b.scores[value], abs=1e-12
            )
