"""Unit tests for repro.datalake.csv_io."""

import pytest

from repro import DataLake, Table
from repro.datalake.csv_io import dump_lake, load_lake, read_table, write_table
from repro.datalake.table import TableError


@pytest.fixture
def csv_dir(tmp_path):
    (tmp_path / "zoo.csv").write_text(
        "name,locale,num\nPanda,Memphis,2\nJaguar,San Diego,8\n"
    )
    (tmp_path / "cars.csv").write_text(
        "model,maker\nXE,Jaguar\nPrius,Toyota\n"
    )
    return tmp_path


class TestReadTable:
    def test_roundtrip_values(self, csv_dir):
        t = read_table(csv_dir / "zoo.csv")
        assert t.name == "zoo"
        assert t.columns == ["name", "locale", "num"]
        assert t.rows[1] == ["Jaguar", "San Diego", "8"]

    def test_explicit_name(self, csv_dir):
        t = read_table(csv_dir / "zoo.csv", name="custom")
        assert t.name == "custom"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TableError):
            read_table(path)

    def test_header_only_is_fine(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        t = read_table(path)
        assert t.num_rows == 0

    def test_quoted_commas(self, tmp_path):
        path = tmp_path / "q.csv"
        path.write_text('a,b\n"x, y",z\n')
        t = read_table(path)
        assert t.rows[0] == ["x, y", "z"]


class TestWriteTable:
    def test_roundtrip(self, tmp_path):
        t = Table("t", ["a", "b"], [["x, y", "z"], ["1", ""]])
        path = tmp_path / "out" / "t.csv"
        write_table(t, path)
        back = read_table(path)
        assert back.columns == t.columns
        assert back.rows == t.rows


class TestLoadLake:
    def test_loads_all_tables_sorted(self, csv_dir):
        lake = load_lake(csv_dir)
        assert lake.table_names == ["cars", "zoo"]

    def test_recursive_with_subdirs(self, csv_dir):
        sub = csv_dir / "nested"
        sub.mkdir()
        (sub / "zoo.csv").write_text("a\n1\n")
        lake = load_lake(csv_dir)
        assert "nested/zoo" in lake.table_names
        assert "zoo" in lake.table_names

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_lake(tmp_path / "nope")


class TestDumpLake:
    def test_roundtrip_whole_lake(self, csv_dir, tmp_path):
        lake = load_lake(csv_dir)
        out = tmp_path / "dump"
        paths = dump_lake(lake, out)
        assert len(paths) == 2
        back = load_lake(out)
        assert sorted(back.table_names) == sorted(lake.table_names)
        assert back.table("zoo").rows == lake.table("zoo").rows

    def test_nested_names_make_subdirs(self, tmp_path):
        lake = DataLake([Table("a/b", ["x"], [["1"]])])
        paths = dump_lake(lake, tmp_path)
        assert paths[0] == tmp_path / "a" / "b.csv"
        assert paths[0].exists()
