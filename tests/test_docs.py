"""The docs tree builds: examples execute, links resolve.

Drives ``tools/check_docs.py`` per file so a broken example in
``README.md`` or ``docs/*.md`` fails the tier-1 suite with the file
name in the test id — the CI docs job runs the same tool standalone.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


CHECKER = _load_checker()
DOC_FILES = CHECKER.doc_files()


def test_docs_tree_exists():
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "architecture.md", "serving.md",
            "api.md"} <= names


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[p.name for p in DOC_FILES]
)
def test_links_resolve(path):
    problems = CHECKER.check_links(path, path.read_text())
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=[p.name for p in DOC_FILES]
)
def test_examples_execute(path, capsys):
    problems = CHECKER.run_blocks(path)
    assert not problems, "\n".join(problems)


def test_serving_docs_cover_lifecycle():
    # The serving guide must document the rules users depend on.
    text = (REPO_ROOT / "docs" / "serving.md").read_text()
    for phrase in ("persistent", "close()", "single-flight",
                   "invalidat", "detect_many"):
        assert phrase.lower() in text.lower(), phrase


def test_serving_docs_cover_http_api():
    # ... including the HTTP surface: every endpoint, the error table,
    # pagination, admission control, and the drain semantics.
    text = (REPO_ROOT / "docs" / "serving.md").read_text()
    for phrase in ("POST /detect", "GET /ranking", "POST /tables",
                   "DELETE /tables", "/healthz", "/stats",
                   "Retry-After", "next_cursor", "drain",
                   "domainnet serve"):
        assert phrase in text, phrase


def test_serving_docs_cover_multilake_and_jobs():
    # The ISSUE-5 surface: workspaces, namespaced routes, async jobs,
    # keep-alive/compression, and bearer auth.
    text = (REPO_ROOT / "docs" / "serving.md").read_text()
    for phrase in ("Workspace", "/lakes/", "GET /lakes",
                   "async=1", "GET /jobs/", "DELETE /jobs/",
                   "unknown-job", "unknown-lake", "keep-alive",
                   "gzip", "Authorization: Bearer", "--auth-token",
                   "DOMAINNET_TOKEN", "--lake", "job_ttl"):
        assert phrase in text, phrase
