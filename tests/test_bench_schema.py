"""Every published ``BENCH_*.json`` artifact obeys the shared schema.

The repo-root ``BENCH_PR<n>.json`` files are the cross-PR performance
record; a malformed one (missing ``_meta``, empty sections, NaN that
``json.dumps`` happily emits) silently breaks the diffing story.  One
parametrized sweep validates every artifact present in the checkout,
and the negative cases pin the validator itself.
"""

import json
from pathlib import Path

import pytest

from repro.bench.report import update_bench_section, validate_bench_report

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACTS = sorted(REPO_ROOT.glob("BENCH_*.json"))


def test_at_least_one_artifact_is_checked_in():
    assert ARTIFACTS, "no BENCH_*.json at the repo root"


@pytest.mark.parametrize(
    "path", ARTIFACTS, ids=[path.name for path in ARTIFACTS]
)
def test_artifact_conforms_to_schema(path):
    problems = validate_bench_report(json.loads(path.read_text()))
    assert problems == [], f"{path.name}: {problems}"


class TestValidator:
    def test_conformant_report_passes(self):
        report = {
            "_meta": {"scale": "default"},
            "results": {"p99_ms": 1.5, "series": [1, 2, 3]},
        }
        assert validate_bench_report(report) == []

    @pytest.mark.parametrize("data,needle", [
        ([], "must be an object"),
        ({}, "empty"),
        ({"results": {"x": 1}}, "missing '_meta'"),
        ({"_meta": []}, "'_meta' must be an object"),
        ({"_meta": {}}, "no result sections"),
        ({"_meta": {}, "results": 3}, "must be an object"),
        ({"_meta": {}, "results": {}}, "is empty"),
        ({"_meta": {}, "results": {"x": float("nan")}}, "non-finite"),
        ({"_meta": {}, "results": {"x": float("inf")}}, "non-finite"),
        (
            {"_meta": {}, "results": {"x": [1, float("-inf")]}},
            "non-finite",
        ),
        ({"_meta": {}, "results": {"x": {1: 2}}}, "non-string key"),
        ({"_meta": {}, "results": {"x": object()}}, "non-JSON value"),
    ])
    def test_violations_are_reported(self, data, needle):
        problems = validate_bench_report(data)
        assert problems, f"expected a violation for {data!r}"
        assert any(needle in problem for problem in problems), problems


class TestUpdateBenchSection:
    def test_creates_then_merges_sections(self, tmp_path):
        path = tmp_path / "BENCH_TEST.json"
        update_bench_section(
            path, "alpha", {"x": 1}, meta={"scale": "smoke"}
        )
        update_bench_section(
            path, "beta", {"y": 2}, meta={"note": "second"}
        )
        report = json.loads(path.read_text())
        # Both sections survive, and _meta keys merge across calls.
        assert report["alpha"] == {"x": 1}
        assert report["beta"] == {"y": 2}
        assert report["_meta"] == {"scale": "smoke", "note": "second"}

    def test_section_update_replaces_in_place(self, tmp_path):
        path = tmp_path / "BENCH_TEST.json"
        update_bench_section(path, "alpha", {"x": 1}, meta={"s": 1})
        update_bench_section(path, "alpha", {"x": 2}, meta={"s": 1})
        assert json.loads(path.read_text())["alpha"] == {"x": 2}

    def test_corrupt_existing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH_TEST.json"
        path.write_text("{not json")
        update_bench_section(path, "alpha", {"x": 1}, meta={"s": 1})
        assert json.loads(path.read_text())["alpha"] == {"x": 1}

    def test_refuses_to_write_malformed_payload(self, tmp_path):
        path = tmp_path / "BENCH_TEST.json"
        with pytest.raises(ValueError, match="malformed"):
            update_bench_section(
                path, "alpha", {"x": float("nan")}, meta={"s": 1}
            )
        assert not path.exists()

    def test_written_file_uses_sorted_two_space_style(self, tmp_path):
        path = tmp_path / "BENCH_TEST.json"
        update_bench_section(path, "alpha", {"b": 1, "a": 2}, meta={})
        text = path.read_text()
        assert text == json.dumps(
            json.loads(text), indent=2, sort_keys=True
        ) + "\n"
        assert text.index('"a"') < text.index('"b"')
