"""Unit tests for repro.datalake.lake."""

import pytest

from repro import DataLake, Table
from repro.datalake.lake import LakeError


def table(name, cols=("a",), rows=()):
    return Table(name, list(cols), [list(r) for r in rows])


class TestMutation:
    def test_add_and_len(self):
        lake = DataLake()
        lake.add_table(table("t1"))
        lake.add_table(table("t2"))
        assert len(lake) == 2
        assert "t1" in lake

    def test_duplicate_rejected(self):
        lake = DataLake([table("t")])
        with pytest.raises(LakeError):
            lake.add_table(table("t"))

    def test_remove_returns_table(self):
        lake = DataLake([table("t")])
        removed = lake.remove_table("t")
        assert removed.name == "t"
        assert "t" not in lake

    def test_remove_missing(self):
        with pytest.raises(LakeError):
            DataLake().remove_table("nope")

    def test_replace(self):
        lake = DataLake([table("t", cols=("a",))])
        lake.replace_table(table("t", cols=("a", "b")))
        assert lake.table("t").num_columns == 2

    def test_replace_missing(self):
        with pytest.raises(LakeError):
            DataLake().replace_table(table("t"))


class TestAccess:
    def test_iteration_preserves_insertion_order(self):
        lake = DataLake([table("z"), table("a"), table("m")])
        assert [t.name for t in lake] == ["z", "a", "m"]

    def test_table_lookup_missing(self):
        with pytest.raises(LakeError):
            DataLake().table("nope")

    def test_iter_attributes(self, figure1_lake):
        qnames = [c.qualified_name for c in figure1_lake.iter_attributes()]
        assert len(qnames) == 12
        assert "T1.At Risk" in qnames
        assert "T3.C2" in qnames

    def test_attribute_lookup(self, figure1_lake):
        col = figure1_lake.attribute("T1.At Risk")
        assert col.values == ("Panda", "Puma", "Jaguar", "Pelican")

    def test_attribute_lookup_with_dotted_table_name(self):
        lake = DataLake([table("data.v2", cols=("x",), rows=[["1"]])])
        col = lake.attribute("data.v2.x")
        assert col.values == ("1",)

    def test_attribute_missing(self, figure1_lake):
        with pytest.raises(LakeError):
            figure1_lake.attribute("T9.nope")


class TestAggregates:
    def test_num_attributes(self, figure1_lake):
        assert figure1_lake.num_attributes == 12

    def test_num_cells(self, figure1_lake):
        # T1: 4x3, T2: 4x3, T3: 3x3, T4: 4x3
        assert figure1_lake.num_cells == 12 + 12 + 9 + 12

    def test_copy_is_independent(self, figure1_lake):
        clone = figure1_lake.copy()
        clone.remove_table("T1")
        assert "T1" in figure1_lake
        clone2 = figure1_lake.copy()
        clone2.table("T2").rows[0][0] = "CHANGED"
        assert figure1_lake.table("T2").rows[0][0] == "Panda"
