"""Tests for the pluggable measure registry."""

import pytest

from repro import DomainNet, HomographIndex, MeasureOutput
from repro.api import (
    DuplicateMeasureError,
    UnknownMeasureError,
    available_measures,
    get_measure,
    register_measure,
    unregister_measure,
)


def degree_measure(graph, request):
    scores = {
        graph.value_name(v): float(graph.degree(v))
        for v in range(graph.num_values)
    }
    return MeasureOutput(scores=scores, descending=True,
                         parameters={"kind": "degree"})


@pytest.fixture
def degree_registered():
    register_measure("degree-test", degree_measure)
    yield "degree-test"
    unregister_measure("degree-test")


class TestRegistration:
    def test_builtins_present(self):
        names = available_measures()
        assert "betweenness" in names
        assert "lcc" in names

    def test_register_and_lookup(self, degree_registered):
        assert get_measure(degree_registered) is degree_measure
        assert degree_registered in available_measures()

    def test_duplicate_rejected(self, degree_registered):
        with pytest.raises(DuplicateMeasureError):
            register_measure(degree_registered, degree_measure)

    def test_duplicate_is_value_error(self, degree_registered):
        # Callers catching ValueError (the historical contract) still work.
        with pytest.raises(ValueError):
            register_measure(degree_registered, degree_measure)

    def test_replace_allows_override(self, degree_registered):
        def other(graph, request):  # pragma: no cover - never dispatched
            return MeasureOutput(scores={})

        register_measure(degree_registered, other, replace=True)
        assert get_measure(degree_registered) is other
        register_measure(degree_registered, degree_measure, replace=True)

    def test_decorator_form(self):
        @register_measure("decorated-test")
        def decorated(graph, request):
            return {"X": 1.0}

        try:
            assert get_measure("decorated-test") is decorated
        finally:
            unregister_measure("decorated-test")

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            register_measure("bogus", 42)

    def test_unknown_lookup(self):
        with pytest.raises(UnknownMeasureError):
            get_measure("pagerank")

    def test_unknown_unregister(self):
        with pytest.raises(UnknownMeasureError):
            unregister_measure("pagerank")

    def test_unknown_error_names_available(self):
        with pytest.raises(UnknownMeasureError, match="betweenness"):
            get_measure("pagerank")


class TestDispatch:
    def test_index_dispatches_custom_measure(
        self, figure1_lake, degree_registered
    ):
        index = HomographIndex(figure1_lake, prune_candidates=False)
        response = index.detect(measure=degree_registered)
        assert response.measure == degree_registered
        assert response.parameters == {"kind": "degree"}
        # JAGUAR spans 4 attributes — the top degree in Figure 1.
        assert response.ranking.values[0] == "JAGUAR"

    def test_legacy_shim_dispatches_custom_measure(
        self, figure1_lake, degree_registered
    ):
        with pytest.deprecated_call():
            detector = DomainNet.from_lake(figure1_lake)
        result = detector.detect(measure=degree_registered)
        assert result.scores["JAGUAR"] == 4.0

    def test_index_rejects_unknown_measure(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        with pytest.raises(UnknownMeasureError):
            index.detect(measure="pagerank")

    def test_plain_mapping_return_is_wrapped(self, figure1_lake):
        register_measure("mapping-test", lambda graph, request: {"A": 1.0})
        try:
            response = HomographIndex(figure1_lake).detect(
                measure="mapping-test"
            )
            assert response.descending is True
            assert response.scores == {"A": 1.0}
        finally:
            unregister_measure("mapping-test")

    def test_bad_return_type_rejected(self, figure1_lake):
        register_measure("broken-test", lambda graph, request: 3.14)
        try:
            with pytest.raises(TypeError):
                HomographIndex(figure1_lake).detect(measure="broken-test")
        finally:
            unregister_measure("broken-test")

    def test_custom_measure_reads_options(self, figure1_lake):
        def offset_measure(graph, request):
            offset = request.option("offset", 0.0)
            return MeasureOutput(
                scores={
                    graph.value_name(v): graph.degree(v) + offset
                    for v in range(graph.num_values)
                },
                parameters={"offset": offset},
            )

        register_measure("offset-test", offset_measure)
        try:
            index = HomographIndex(figure1_lake)
            response = index.detect(
                measure="offset-test", options={"offset": 10.0}
            )
            assert response.parameters["offset"] == 10.0
            assert min(response.scores.values()) >= 10.0
        finally:
            unregister_measure("offset-test")
