"""Serving-layer concurrency: single-flight, persistent pools, lifecycle.

The ISSUE-3 contract: concurrent identical ``detect()`` calls trigger
exactly one computation; a persistent ``ProcessBackend`` keeps its
worker pool and shared-memory export warm across calls and swaps the
export when the graph changes; ``close()`` releases every segment; the
batch paths (``asubmit``/``detect_many``) ride the same machinery.
"""

import os
import threading
import time
from concurrent.futures import Future

import pytest

from repro import (
    DetectRequest,
    ExecutionConfig,
    HomographIndex,
    MeasureOutput,
    ProcessBackend,
    SerialBackend,
    SingleFlight,
    Table,
    register_measure,
    resolve_backend,
    unregister_measure,
    use_backend,
)

PERSISTENT_2 = ExecutionConfig(backend="process", n_jobs=2, persistent=True)

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="shared-memory segment files only observable on /dev/shm",
)


class TestSingleFlightPrimitive:
    def test_sequential_calls_each_run(self):
        group = SingleFlight()
        calls = []
        for i in range(3):
            value, leader = group.do("k", lambda i=i: calls.append(i) or i)
            assert leader
            assert value == i
        assert calls == [0, 1, 2]

    def test_concurrent_same_key_runs_once(self):
        group = SingleFlight()
        started = threading.Event()
        release = threading.Event()
        calls = []

        def work():
            calls.append(1)
            started.set()
            release.wait(5)
            return "result"

        outcomes = []

        def call():
            outcomes.append(group.do("key", work))

        threads = [threading.Thread(target=call) for _ in range(8)]
        for t in threads:
            t.start()
        assert started.wait(5)
        # Give followers time to reach the flight table, then release.
        time.sleep(0.05)
        release.set()
        for t in threads:
            t.join()
        assert calls == [1]
        assert sorted(leader for _, leader in outcomes) == [False] * 7 + [True]
        assert {value for value, _ in outcomes} == {"result"}
        assert group.in_flight() == 0

    def test_leader_error_propagates_to_followers(self):
        group = SingleFlight()
        started = threading.Event()
        release = threading.Event()

        def explode():
            started.set()
            release.wait(5)
            raise ValueError("boom")

        errors = []

        def call():
            try:
                group.do("key", explode)
            except ValueError as error:
                errors.append(str(error))

        threads = [threading.Thread(target=call) for _ in range(4)]
        for t in threads:
            t.start()
        assert started.wait(5)
        time.sleep(0.05)
        release.set()
        for t in threads:
            t.join()
        assert errors == ["boom"] * 4
        # A failed flight is forgotten: the next call runs afresh.
        value, leader = group.do("key", lambda: 42)
        assert (value, leader) == (42, True)

    def test_distinct_keys_do_not_coalesce(self):
        group = SingleFlight()
        assert group.do("a", lambda: 1) == (1, True)
        assert group.do("b", lambda: 2) == (2, True)


@pytest.fixture
def slow_measure():
    """A registered measure that blocks until released, counting runs."""
    state = {
        "calls": 0,
        "started": threading.Event(),
        "release": threading.Event(),
    }

    def measure(graph, request):
        state["calls"] += 1
        state["started"].set()
        state["release"].wait(5)
        return MeasureOutput(
            scores={graph.value_name(v): float(v)
                    for v in range(graph.num_values)},
            descending=True,
        )

    register_measure("slow-serving-test", measure)
    yield state
    unregister_measure("slow-serving-test")


class TestDetectSingleFlight:
    def test_concurrent_identical_requests_compute_once(
        self, figure1_lake, slow_measure
    ):
        index = HomographIndex(figure1_lake)
        index.graph  # pre-build so threads contend only on scoring
        responses = []

        def call():
            responses.append(index.detect(measure="slow-serving-test"))

        threads = [threading.Thread(target=call) for _ in range(6)]
        for t in threads:
            t.start()
        assert slow_measure["started"].wait(5)
        time.sleep(0.05)
        slow_measure["release"].set()
        for t in threads:
            t.join()

        assert slow_measure["calls"] == 1
        assert len(responses) == 6
        reference = responses[0].scores
        assert all(r.scores == reference for r in responses)
        info = index.cache_info()
        assert info.misses == 1
        # Everyone who did not compute either coalesced into the
        # flight or (if it finished first) hit the fresh cache entry.
        assert info.coalesced + info.hits == 5
        # Exactly one caller saw cached=False.
        assert sum(not r.cached for r in responses) == 1

    def test_execution_variants_coalesce_together(
        self, figure1_lake, slow_measure
    ):
        # Execution is excluded from the cache key, so identical
        # requests differing only in execution share one flight.
        index = HomographIndex(figure1_lake)
        index.graph
        responses = []
        configs = [None, ExecutionConfig(backend="serial", chunk_size=3)]

        def call(cfg):
            responses.append(
                index.detect(measure="slow-serving-test", execution=cfg)
            )

        threads = [threading.Thread(target=call, args=(configs[i % 2],))
                   for i in range(4)]
        for t in threads:
            t.start()
        assert slow_measure["started"].wait(5)
        time.sleep(0.05)
        slow_measure["release"].set()
        for t in threads:
            t.join()
        assert slow_measure["calls"] == 1
        assert len({frozenset(r.scores.items()) for r in responses}) == 1

    def test_mutation_during_flight_is_not_cached(
        self, figure1_lake, slow_measure
    ):
        index = HomographIndex(figure1_lake)
        index.graph
        done = []

        def call():
            done.append(index.detect(measure="slow-serving-test"))

        thread = threading.Thread(target=call)
        thread.start()
        assert slow_measure["started"].wait(5)
        index.add_table(Table.from_columns("T9", {"X": ["Jaguar", "Lion"]}))
        slow_measure["release"].set()
        thread.join()
        # The in-flight result was served but not stored: the next
        # detect recomputes against the new lake.
        assert index.cache_info().size == 0
        index.detect(measure="slow-serving-test")
        assert slow_measure["calls"] == 2


class TestPersistentPool:
    def test_pool_and_export_reused_across_calls(self, figure1_lake):
        with HomographIndex(
            figure1_lake, prune_candidates=False, execution=PERSISTENT_2
        ) as index:
            index.detect(measure="betweenness")
            backend = index._backend
            assert isinstance(backend, ProcessBackend)
            assert backend.persistent and backend.pool_alive
            pool = backend._pool
            names = backend.export_names
            assert len(names) == 2
            index.detect(measure="lcc")
            index.detect(measure="betweenness", endpoints="values")
            assert backend._pool is pool
            assert backend.export_names == names

    def test_persistent_matches_serial_scores(self, figure1_lake):
        serial = HomographIndex(figure1_lake, prune_candidates=False)
        expected = serial.detect(measure="betweenness").scores
        with HomographIndex(
            figure1_lake, prune_candidates=False, execution=PERSISTENT_2
        ) as index:
            first = index.detect(measure="betweenness").scores
            index.clear_cache()
            warm = index.detect(measure="betweenness").scores
        for value, score in expected.items():
            assert first[value] == pytest.approx(score, abs=1e-12)
            assert warm[value] == pytest.approx(score, abs=1e-12)

    def test_replace_table_invalidates_export_keeps_pool(
        self, figure1_lake
    ):
        with HomographIndex(
            figure1_lake, prune_candidates=False, execution=PERSISTENT_2
        ) as index:
            before = index.detect(measure="betweenness")
            backend = index._backend
            pool = backend._pool
            old_names = backend.export_names
            index.replace_table(
                Table.from_columns(
                    "T3", {"C1": ["XE"], "C2": ["Jaguar"], "C3": ["UK"]}
                )
            )
            # Export released eagerly; the pool survives the mutation.
            assert backend.export_names == ()
            assert backend._pool is pool
            after = index.detect(measure="betweenness")
            assert backend._pool is pool
            assert backend.export_names != old_names
            assert after.scores != before.scores
            # Parity against a fresh serial index over the mutated lake.
            serial = HomographIndex(index.lake, prune_candidates=False)
            for value, score in serial.detect(
                measure="betweenness"
            ).scores.items():
                assert after.scores[value] == pytest.approx(
                    score, abs=1e-12
                )

    @needs_dev_shm
    def test_close_releases_all_segments(self, figure1_lake):
        index = HomographIndex(
            figure1_lake, prune_candidates=False, execution=PERSISTENT_2
        )
        index.detect(measure="betweenness")
        backend = index._backend
        names = backend.export_names
        assert names
        for name in names:
            assert os.path.exists(f"/dev/shm/{name}")
        index.close()
        assert backend.export_names == ()
        assert not backend.pool_alive
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")

    @needs_dev_shm
    def test_export_swap_unlinks_stale_segments(self, figure1_lake):
        with HomographIndex(
            figure1_lake, prune_candidates=False, execution=PERSISTENT_2
        ) as index:
            index.detect(measure="betweenness")
            old_names = index._backend.export_names
            index.add_table(
                Table.from_columns("T9", {"X": ["Jaguar", "Lion"]})
            )
            index.detect(measure="betweenness")
            for name in old_names:
                assert not os.path.exists(f"/dev/shm/{name}")

    def test_backend_context_manager_and_reuse(self, figure1_lake):
        from repro import build_graph

        graph = build_graph(figure1_lake)
        with ProcessBackend(n_jobs=2, persistent=True) as backend:
            spans = backend.spans(graph.num_values)
            first = backend.map_chunks(
                graph, "lcc", spans, {"variant": "attribute-jaccard"}
            )
            pool = backend._pool
            second = backend.map_chunks(
                graph, "lcc", spans, {"variant": "attribute-jaccard"}
            )
            assert backend._pool is pool
        assert not backend.pool_alive
        for (lo1, hi1, seg1), (lo2, hi2, seg2) in zip(first, second):
            assert (lo1, hi1) == (lo2, hi2)
            assert (seg1 == seg2).all()
        with pytest.raises(RuntimeError):
            backend.map_chunks(
                graph, "lcc", spans, {"variant": "attribute-jaccard"}
            )

    @needs_dev_shm
    def test_per_request_persistent_config_does_not_leak(
        self, figure1_lake
    ):
        # A persistent config arriving on one request (e.g. inside a
        # deserialized DetectRequest) has no owner to close the pool:
        # the measure's backend_scope must release it after the call.
        before = set(os.listdir("/dev/shm"))
        index = HomographIndex(figure1_lake, prune_candidates=False)
        index.detect(
            measure="betweenness",
            execution=ExecutionConfig(
                backend="process", n_jobs=2, persistent=True
            ),
        )
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked
        index.close()

    def test_invalidate_export_defers_release_while_inflight(
        self, figure1_lake
    ):
        from repro import build_graph

        graph = build_graph(figure1_lake)
        with ProcessBackend(n_jobs=2, persistent=True) as backend:
            spans = backend.spans(graph.num_values)
            backend.map_chunks(
                graph, "lcc", spans, {"variant": "attribute-jaccard"}
            )
            segments = list(backend._segments)
            # Simulate a concurrent map: with a call in flight the
            # export swap must park segments instead of unlinking.
            with backend._lock:
                backend._inflight += 1
            backend.invalidate_export()
            assert backend.export_names == ()
            assert backend._retired == segments
            for shm in segments:
                assert os.path.exists(f"/dev/shm/{shm.name}") or \
                    not os.path.isdir("/dev/shm")
            with backend._lock:
                backend._inflight -= 1
            # The next map drains the retired list on its way out.
            backend.map_chunks(
                graph, "lcc", spans, {"variant": "attribute-jaccard"}
            )
            assert backend._retired == []

    def test_close_blocks_until_inflight_drains(self):
        # close() must not terminate the pool under a running
        # map_chunks: it waits on the in-flight counter.
        backend = ProcessBackend(n_jobs=2, persistent=True)
        with backend._lock:
            backend._inflight += 1
        closed = threading.Event()

        def close_it():
            backend.close()
            closed.set()

        thread = threading.Thread(target=close_it)
        thread.start()
        time.sleep(0.1)
        assert not closed.is_set()  # still waiting on the in-flight map
        with backend._idle:
            backend._inflight -= 1
            backend._idle.notify_all()
        thread.join(5)
        assert closed.is_set()
        with pytest.raises(RuntimeError):
            backend._map_persistent(None, "lcc", [(0, 1)], {})

    def test_resolve_backend_passthrough_and_override(self):
        backend = SerialBackend(chunk_size=5)
        assert resolve_backend(backend) is backend
        with use_backend(backend):
            # The override wins over configs and None alike.
            assert resolve_backend(None) is backend
            assert resolve_backend(ExecutionConfig(n_jobs=2)) is backend
        assert resolve_backend(None) is not backend

    def test_persistent_config_round_trip(self):
        config = ExecutionConfig(
            backend="process", n_jobs=2, chunk_size=3, persistent=True
        )
        clone = ExecutionConfig.from_dict(config.to_dict())
        assert clone == config
        assert isinstance(resolve_backend(config), ProcessBackend)
        assert resolve_backend(config).persistent


class FlakyBackend(SerialBackend):
    """A backend that fails mid-``map_chunks`` for its first N calls.

    The failure happens *after* the first chunk computed (genuinely
    mid-map, like a worker dying), and the map blocks on ``release``
    first so a test can line up coalesced waiters behind the leader.
    """

    def __init__(self, failures: int = 1) -> None:
        super().__init__()
        self.calls = 0
        self.failures = failures
        self.started = threading.Event()
        self.release = threading.Event()

    def map_chunks(self, graph, kernel, payloads, common):
        self.calls += 1
        if self.calls <= self.failures:
            self.started.set()
            self.release.wait(10)
            super().map_chunks(graph, kernel, list(payloads)[:1], common)
            raise RuntimeError("flaky backend failure")
        return super().map_chunks(graph, kernel, payloads, common)


class TestFaultInjection:
    def test_backend_error_propagates_to_all_coalesced_waiters(
        self, figure1_lake
    ):
        # PR 3 only tested the happy path: here the *kernel map* dies
        # mid-flight and every coalesced HTTP-style caller must see
        # the error — not a hang, not a partial result.
        index = HomographIndex(
            figure1_lake,
            prune_candidates=False,
            execution=ExecutionConfig(backend="serial"),
        )
        flaky = FlakyBackend(failures=1)
        index._backend = flaky  # used by _serving_backend()
        index.graph
        outcomes = []

        def call():
            try:
                outcomes.append(index.detect(measure="betweenness"))
            except RuntimeError as error:
                outcomes.append(str(error))

        threads = [threading.Thread(target=call) for _ in range(4)]
        for t in threads:
            t.start()
        assert flaky.started.wait(10)
        # Wait for all four calls to be admitted (the step right
        # before joining the flight) instead of a fixed sleep, so a
        # slow-scheduled thread cannot miss the flight and become a
        # second leader on a loaded machine.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            with index._lock:
                if index._active == 4:
                    break
            time.sleep(0.005)
        time.sleep(0.05)
        flaky.release.set()
        for t in threads:
            t.join(30)

        # One map ran; all four callers saw its failure.
        assert flaky.calls == 1
        assert outcomes == ["flaky backend failure"] * 4
        # Nothing was cached for the failed flight ...
        assert index.cache_info().size == 0
        assert index._singleflight.in_flight() == 0
        # ... and the backend (pool) stays usable: the next request
        # computes cleanly through the same instance.
        response = index.detect(measure="betweenness")
        assert flaky.calls == 2
        assert response.scores
        serial = HomographIndex(figure1_lake, prune_candidates=False)
        assert response.scores == pytest.approx(
            serial.detect(measure="betweenness").scores
        )
        index.close()

    def test_worker_exception_leaves_persistent_pool_usable(
        self, figure1_lake
    ):
        # Same failure mode, real machinery: a kernel raising inside a
        # pooled worker must not poison the pool or leak the export.
        from repro import build_graph
        from repro.perf.kernels import _KERNELS, register_kernel

        @register_kernel("boom-serving-test")
        def boom(ctx, payload, common):
            raise ValueError("kernel exploded")

        try:
            graph = build_graph(figure1_lake)
            with ProcessBackend(n_jobs=2, persistent=True) as backend:
                spans = backend.spans(graph.num_values)
                with pytest.raises(ValueError, match="kernel exploded"):
                    backend.map_chunks(
                        graph, "boom-serving-test", spans, {}
                    )
                # In-flight bookkeeping drained despite the failure.
                assert backend._inflight == 0
                # The pool survives and serves the next map.
                partials = backend.map_chunks(
                    graph, "lcc", spans, {"variant": "attribute-jaccard"}
                )
                assert len(partials) == len(spans)
        finally:
            _KERNELS.pop("boom-serving-test", None)

    def test_leader_failure_then_follower_retry_recomputes(
        self, figure1_lake
    ):
        # A failed flight must be forgotten: a retry after the error
        # becomes a fresh leader instead of inheriting the corpse.
        index = HomographIndex(
            figure1_lake,
            prune_candidates=False,
            execution=ExecutionConfig(backend="serial"),
        )
        flaky = FlakyBackend(failures=1)
        flaky.release.set()  # fail immediately, no coalescing needed
        index._backend = flaky
        with pytest.raises(RuntimeError, match="flaky backend failure"):
            index.detect(measure="betweenness")
        assert index.detect(measure="betweenness").scores
        assert index.cache_info().size == 1
        index.close()


class TestCloseRace:
    def test_concurrent_close_waits_for_teardown(self, figure1_lake):
        # Regression (ISSUE 4): the second of two racing close() calls
        # used to return as soon as `_closed` was set — while the first
        # was still draining — so its caller could observe live
        # segments after "close". Both calls must now return only once
        # teardown completed.
        from repro import build_graph

        graph = build_graph(figure1_lake)
        backend = ProcessBackend(n_jobs=2, persistent=True)
        spans = backend.spans(graph.num_values)
        backend.map_chunks(
            graph, "lcc", spans, {"variant": "attribute-jaccard"}
        )
        names = backend.export_names
        assert names
        with backend._lock:
            backend._inflight += 1  # pin an artificial in-flight map

        returned = []

        def close_it(tag):
            backend.close()
            # close() returning must imply released resources.
            returned.append((tag, backend.pool_alive,
                             backend.export_names))

        first = threading.Thread(target=close_it, args=("first",))
        second = threading.Thread(target=close_it, args=("second",))
        first.start()
        time.sleep(0.1)  # let the first closer commit `_closed`
        second.start()
        time.sleep(0.1)
        # Neither close may return while a map is in flight.
        assert returned == []
        with backend._idle:
            backend._inflight -= 1
            backend._idle.notify_all()
        first.join(10)
        second.join(10)
        assert len(returned) == 2
        for _, pool_alive, export_names in returned:
            assert not pool_alive
            assert export_names == ()

    def test_close_after_failed_map_is_idempotent(self, figure1_lake):
        from repro import build_graph
        from repro.perf.kernels import _KERNELS, register_kernel

        @register_kernel("boom-close-test")
        def boom(ctx, payload, common):
            raise ValueError("kernel exploded")

        try:
            graph = build_graph(figure1_lake)
            backend = ProcessBackend(n_jobs=2, persistent=True)
            spans = backend.spans(graph.num_values)
            with pytest.raises(ValueError):
                backend.map_chunks(graph, "boom-close-test", spans, {})
            names = backend.export_names
            assert names  # the failed map left its export behind
            backend.close()
            backend.close()  # second close: no-op, no error
            assert not backend.pool_alive
            assert backend.export_names == ()
            if os.path.isdir("/dev/shm"):
                for name in names:
                    assert not os.path.exists(f"/dev/shm/{name}")
            with pytest.raises(RuntimeError):
                backend.map_chunks(
                    graph, "lcc", spans, {"variant": "attribute-jaccard"}
                )
        finally:
            _KERNELS.pop("boom-close-test", None)


class TestLifecycle:
    def test_close_waits_for_admitted_detect(
        self, figure1_lake, slow_measure
    ):
        index = HomographIndex(figure1_lake)
        index.graph
        result = {}

        def call():
            result["response"] = index.detect(measure="slow-serving-test")

        worker = threading.Thread(target=call)
        worker.start()
        assert slow_measure["started"].wait(5)

        closed = threading.Event()

        def close_it():
            index.close()
            closed.set()

        closer = threading.Thread(target=close_it)
        closer.start()
        time.sleep(0.05)
        # close() is draining: the admitted detect has not finished.
        assert not closed.is_set()
        slow_measure["release"].set()
        worker.join(5)
        closer.join(5)
        assert closed.is_set()
        assert result["response"].scores  # the admitted call succeeded

    def test_context_manager_closes(self, figure1_lake):
        with HomographIndex(figure1_lake) as index:
            index.detect(measure="lcc")
        assert index.closed
        with pytest.raises(RuntimeError):
            index.detect(measure="lcc")
        with pytest.raises(RuntimeError):
            index.asubmit(measure="lcc")

    def test_close_is_idempotent_and_state_readable(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        response = index.detect(measure="lcc")
        index.close()
        index.close()
        assert index.cache_info().size == 1
        assert len(index.lake) == 4
        assert response.scores


class TestBatchPaths:
    def test_asubmit_returns_future(self, figure1_lake):
        with HomographIndex(figure1_lake) as index:
            future = index.asubmit(measure="lcc")
            assert isinstance(future, Future)
            response = future.result(timeout=30)
            assert response.measure == "lcc"
            assert not response.cached
            # Same request again: served from the score cache.
            assert index.asubmit(measure="lcc").result(timeout=30).cached

    def test_detect_many_preserves_order_and_dedupes(self, figure1_lake):
        requests = [
            DetectRequest(measure="lcc"),
            DetectRequest(measure="betweenness"),
            DetectRequest(measure="lcc"),
        ]
        with HomographIndex(figure1_lake) as index:
            responses = index.detect_many(requests)
            assert [r.measure for r in responses] == [
                "lcc", "betweenness", "lcc",
            ]
            assert responses[0].scores == responses[2].scores
            info = index.cache_info()
            assert info.misses == 2  # one per distinct configuration
            assert info.hits + info.coalesced >= 1

    def test_detect_many_on_persistent_pool(self, figure1_lake):
        requests = [
            DetectRequest(measure="betweenness"),
            DetectRequest(measure="lcc"),
        ]
        with HomographIndex(
            figure1_lake, prune_candidates=False, execution=PERSISTENT_2
        ) as index:
            responses = index.detect_many(requests)
            assert index._backend.pool_alive
        serial = HomographIndex(figure1_lake, prune_candidates=False)
        for request, response in zip(requests, responses):
            expected = serial.detect(request).scores
            for value, score in expected.items():
                assert response.scores[value] == pytest.approx(
                    score, abs=1e-12
                )
