"""Cluster subsystem: oplog, replay parity, router policy, /version.

In-process coverage of the PR-10 surface (no subprocesses here; the
process-level supervisor is exercised by ``test_cluster_failover``):

* :class:`MutationLog` durability — header + epoch on creation,
  contiguous sequence numbers, recovery of an existing log, torn-tail
  truncation, corruption refusal;
* the primary's recording path — ``oplog_seq`` in mutation responses,
  ``GET /lakes/<name>/oplog`` with ``since`` filtering, 404
  ``no-oplog`` when recording is off;
* :class:`OplogFollower` replay — a chain of mutations converges a
  replica to **byte-identical** rankings (the PR-7 splice-vs-rebuild
  parity guarantee, applied across processes), idempotent re-replay,
  epoch changes reported as ``needs_bootstrap``;
* :class:`ClusterRouter` policy — reads balance across replicas,
  writes pin to the primary, job polls stick to the accepting
  replica, a dead replica is retried around without a client-visible
  failure, a dark fleet answers 503 ``no-healthy-replica``;
* the ``GET /version`` fingerprint and the pinned
  ``wait_ready(timeout=, backoff=)`` / :class:`ServiceUnavailable`
  client surface.
"""

import json
import threading
import time

import pytest

from repro import (
    HomographClient,
    HomographIndex,
    ServiceError,
    ServiceUnavailable,
    Table,
    start_server,
)
from repro import __version__ as library_version
from repro.cluster import (
    MutationLog,
    OplogError,
    OplogFollower,
    Replica,
    ReplicaSet,
    replay_entry,
    start_router,
)
from repro.snapshot import FORMAT_VERSION

from tests.conftest import make_figure1_lake


# ----------------------------------------------------------------------
# MutationLog
# ----------------------------------------------------------------------
class TestMutationLog:
    def test_creation_writes_header_and_epoch(self, tmp_path):
        with MutationLog(tmp_path / "oplog.jsonl") as log:
            assert log.last_seq == 0
            assert len(log.epoch) == 32
            lines = (tmp_path / "oplog.jsonl").read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {"format": 1, "epoch": log.epoch, "seq": 0}

    def test_append_assigns_contiguous_seqs(self, tmp_path):
        with MutationLog(tmp_path / "oplog.jsonl") as log:
            assert log.append({"op": "add", "table": "a"}) == 1
            assert log.append({"op": "remove", "table": "a"}) == 2
            assert log.last_seq == 2
            entries = log.entries()
        assert [e["seq"] for e in entries] == [1, 2]
        assert entries[0]["op"] == "add"

    def test_entries_since_filters(self, tmp_path):
        with MutationLog(tmp_path / "oplog.jsonl") as log:
            for i in range(4):
                log.append({"op": "add", "table": f"t{i}"})
            assert [e["seq"] for e in log.entries(since=2)] == [3, 4]
            payload = log.read_since(2)
        assert payload["last_seq"] == 4
        assert payload["epoch"] == log.epoch
        assert [e["seq"] for e in payload["entries"]] == [3, 4]

    def test_recovery_preserves_epoch_and_seq(self, tmp_path):
        path = tmp_path / "oplog.jsonl"
        with MutationLog(path) as log:
            log.append({"op": "add", "table": "a"})
            epoch = log.epoch
        with MutationLog(path) as recovered:
            assert recovered.epoch == epoch
            assert recovered.last_seq == 1
            assert recovered.append({"op": "remove", "table": "a"}) == 2

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "oplog.jsonl"
        with MutationLog(path) as log:
            log.append({"op": "add", "table": "a"})
            log.append({"op": "add", "table": "b"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "op": "ad')  # crash mid-append
        with MutationLog(path) as recovered:
            assert recovered.last_seq == 2
            assert recovered.append({"op": "add", "table": "c"}) == 3

    def test_corrupt_header_raises(self, tmp_path):
        path = tmp_path / "oplog.jsonl"
        path.write_text('{"format": 99, "epoch": "x", "seq": 0}\n')
        with pytest.raises(OplogError):
            MutationLog(path)

    def test_seq_gap_raises(self, tmp_path):
        path = tmp_path / "oplog.jsonl"
        with MutationLog(path) as log:
            log.append({"op": "add", "table": "a"})
            epoch = log.epoch
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 5, "op": "remove", "table": "a"}\n')
        with pytest.raises(OplogError):
            MutationLog(path)
        assert epoch  # silence the unused-var lint

    def test_append_after_close_raises(self, tmp_path):
        log = MutationLog(tmp_path / "oplog.jsonl")
        log.close()
        log.close()  # idempotent
        with pytest.raises(OplogError):
            log.append({"op": "add", "table": "a"})


# ----------------------------------------------------------------------
# Version + wait_ready client surface
# ----------------------------------------------------------------------
@pytest.fixture
def recording_stack(tmp_path):
    """A served index recording its mutations, plus a ready client."""
    log = MutationLog(tmp_path / "oplog.jsonl")
    index = HomographIndex(make_figure1_lake())
    server = start_server(index, port=0, oplogs={"default": log})
    client = HomographClient(server.url, timeout=30.0)
    client.wait_ready()
    yield server, client, log
    server.drain()
    assert log.closed  # drain owns oplog shutdown


class TestVersionEndpoint:
    def test_version_fingerprint(self, recording_stack):
        _, client, _ = recording_stack
        payload = client.version()
        assert payload["library"] == library_version
        assert payload["snapshot_format"] == FORMAT_VERSION
        assert payload["python"] and payload["numpy"]

    def test_version_is_auth_exempt(self, figure1_lake):
        server = start_server(
            HomographIndex(figure1_lake), port=0, auth_token="s3cret"
        )
        try:
            anonymous = HomographClient(server.url, timeout=30.0)
            anonymous.wait_ready()
            assert anonymous.version()["library"] == library_version
            with pytest.raises(ServiceError) as info:
                anonymous.stats()
            assert info.value.status == 401
        finally:
            server.drain()


class TestWaitReady:
    def test_unreachable_raises_service_unavailable(self):
        client = HomographClient("http://127.0.0.1:9", timeout=5.0)
        started = time.monotonic()
        with pytest.raises(ServiceUnavailable) as info:
            client.wait_ready(timeout=0.2, backoff=0.01)
        assert time.monotonic() - started < 5.0
        assert info.value.base_url == "http://127.0.0.1:9"
        assert info.value.timeout == 0.2
        # Backward compatible with pre-existing except TimeoutError.
        assert isinstance(info.value, TimeoutError)

    @pytest.mark.parametrize("kwargs", [
        {"timeout": 0}, {"timeout": -1}, {"backoff": 0},
        {"backoff": -0.5},
    ])
    def test_nonpositive_knobs_rejected(self, kwargs):
        client = HomographClient("http://127.0.0.1:9")
        with pytest.raises(ValueError):
            client.wait_ready(**kwargs)


# ----------------------------------------------------------------------
# Oplog over HTTP + replay parity
# ----------------------------------------------------------------------
def _table(name, values):
    return Table.from_columns(
        name, {"A": list(values), "B": ["x"] * len(values)}
    )


#: The five-mutation chain the parity tests replay: adds, a remove,
#: and a replace (remove + add of the same name).
MUTATION_CHAIN = (
    ("add", _table("M1", ["Jaguar", "Lion"])),
    ("add", _table("M2", ["Puma", "Nike"])),
    ("remove", "M1"),
    ("add", _table("M1", ["Jaguar", "Crane"])),
    ("add", _table("M3", ["Panda", "Bamboo"])),
)


def _apply_chain(client):
    for op, payload in MUTATION_CHAIN:
        if op == "add":
            client.add_table(payload)
        else:
            client.remove_table(payload)


class TestOplogOverHTTP:
    def test_mutations_carry_oplog_seq(self, recording_stack):
        _, client, log = recording_stack
        first = client.add_table(_table("M1", ["Jaguar"]))
        second = client.remove_table("M1")
        assert first["oplog_seq"] == 1
        assert second["oplog_seq"] == 2
        assert log.last_seq == 2

    def test_oplog_endpoint_filters_since(self, recording_stack):
        _, client, log = recording_stack
        _apply_chain(client)
        tail = client.oplog(since=3)
        assert tail["epoch"] == log.epoch
        assert tail["last_seq"] == 5
        assert [e["seq"] for e in tail["entries"]] == [4, 5]
        assert tail["lake"] == "default"

    def test_no_oplog_is_404(self, figure1_lake):
        server = start_server(HomographIndex(figure1_lake), port=0)
        try:
            client = HomographClient(server.url, timeout=30.0)
            client.wait_ready()
            with pytest.raises(ServiceError) as info:
                client.oplog()
            assert info.value.status == 404
            assert info.value.code == "no-oplog"
            # and mutations do not grow a phantom seq
            assert "oplog_seq" not in client.add_table(
                _table("M1", ["Jaguar"])
            )
        finally:
            server.drain()


class TestReplayParity:
    def test_follower_converges_bit_identically(self, recording_stack):
        primary_server, primary, _ = recording_stack
        replica_server = start_server(
            HomographIndex(make_figure1_lake()), port=0
        )
        try:
            replica = HomographClient(replica_server.url, timeout=30.0)
            replica.wait_ready()
            _apply_chain(primary)
            follower = OplogFollower(primary, replica)
            report = follower.sync_once()
            assert report["applied"] == 5
            assert report["lag"] == 0
            assert report["needs_bootstrap"] is False
            for measure in ("betweenness", "lcc"):
                expected = [
                    (e.rank, e.value, e.score)
                    for e in primary.iter_ranking(measure)
                ]
                actual = [
                    (e.rank, e.value, e.score)
                    for e in replica.iter_ranking(measure)
                ]
                assert actual == expected
            # a second pass finds nothing new
            assert follower.sync_once()["applied"] == 0
        finally:
            replica_server.drain()

    def test_replay_entry_is_idempotent(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        try:
            add = {
                "op": "add", "table": "M1",
                "columns": {"A": ["Jaguar"], "B": ["x"]},
            }
            assert replay_entry(index, add) is True
            assert replay_entry(index, add) is False  # duplicate
            remove = {"op": "remove", "table": "M1"}
            assert replay_entry(index, remove) is True
            assert replay_entry(index, remove) is False  # unknown
            with pytest.raises(OplogError):
                replay_entry(index, {"op": "truncate"})
        finally:
            index.close()

    def test_epoch_change_reports_needs_bootstrap(
        self, recording_stack, tmp_path
    ):
        primary_server, primary, original = recording_stack
        replica_server = start_server(
            HomographIndex(make_figure1_lake()), port=0
        )
        fresh = MutationLog(tmp_path / "fresh.jsonl")
        try:
            replica = HomographClient(replica_server.url, timeout=30.0)
            replica.wait_ready()
            primary.add_table(_table("M1", ["Jaguar"]))
            follower = OplogFollower(primary, replica)
            assert follower.sync_once()["applied"] == 1
            # Simulate a republish: swap in a fresh log (new epoch).
            primary_server.oplogs["default"] = fresh
            report = follower.sync_once()
            assert report["needs_bootstrap"] is True
            assert follower.applied_seq == 0
        finally:
            primary_server.oplogs["default"] = original
            fresh.close()
            replica_server.drain()


# ----------------------------------------------------------------------
# ReplicaSet policy
# ----------------------------------------------------------------------
class TestReplicaSet:
    def test_roles_and_duplicates_validated(self):
        with pytest.raises(ValueError):
            Replica("a", role="observer")
        with pytest.raises(ValueError):
            ReplicaSet([])
        with pytest.raises(ValueError):
            ReplicaSet([Replica("a", url="http://x"),
                        Replica("a", url="http://y")])

    def test_pick_read_prefers_least_in_flight(self):
        busy = Replica("busy", url="http://b")
        idle = Replica("idle", url="http://i")
        fleet = ReplicaSet([busy, idle])
        busy.begin_request()
        for _ in range(4):
            assert fleet.pick_read() is idle
        busy.end_request()
        picked = {fleet.pick_read().name for _ in range(4)}
        assert picked == {"busy", "idle"}  # round-robin among ties

    def test_pick_read_skips_unhealthy_and_excluded(self):
        a = Replica("a", url="http://a")
        b = Replica("b", url="http://b")
        fleet = ReplicaSet([a, b])
        a.mark_unhealthy()
        assert fleet.pick_read() is b
        assert fleet.pick_read(exclude=(b,)) is None
        b.draining = True
        assert fleet.pick_read() is None

    def test_primary_is_role_based(self):
        replica = Replica("r", url="http://r")
        primary = Replica("p", url="http://p", role="primary")
        assert ReplicaSet([replica, primary]).primary is primary
        assert ReplicaSet([replica]).primary is replica


# ----------------------------------------------------------------------
# Router behavior over live in-process backends
# ----------------------------------------------------------------------
@pytest.fixture
def routed_pair(tmp_path):
    """A primary (recording) + replica fleet behind a live router."""
    log = MutationLog(tmp_path / "oplog.jsonl")
    primary_server = start_server(
        HomographIndex(make_figure1_lake()), port=0,
        oplogs={"default": log},
    )
    replica_server = start_server(
        HomographIndex(make_figure1_lake()), port=0
    )
    primary = Replica("primary", url=primary_server.url, role="primary")
    replica = Replica("replica-1", url=replica_server.url)
    fleet = ReplicaSet([primary, replica])
    router = start_router(fleet)
    client = HomographClient(router.url, timeout=30.0)
    client.wait_ready()
    yield {
        "router": router,
        "client": client,
        "fleet": fleet,
        "primary_server": primary_server,
        "replica_server": replica_server,
        "primary": primary,
        "replica": replica,
    }
    router.drain()
    primary_server.drain()
    replica_server.drain()


def _replica_header(router_url, path="/healthz"):
    import http.client
    import urllib.parse

    parts = urllib.parse.urlsplit(router_url)
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port, timeout=30.0
    )
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        response.read()
        return response.headers["X-DomainNet-Replica"]
    finally:
        connection.close()


class TestRouterPolicy:
    def test_reads_balance_across_replicas(self, routed_pair):
        seen = {
            _replica_header(routed_pair["router"].url)
            for _ in range(10)
        }
        assert seen == {"primary", "replica-1"}

    def test_writes_pin_to_primary(self, routed_pair):
        client = routed_pair["client"]
        response = client.add_table(_table("M1", ["Jaguar"]))
        assert response["oplog_seq"] == 1  # only the primary records
        # The replica did not see the write (no sync loop here).
        direct = HomographClient(
            routed_pair["replica_server"].url, timeout=30.0
        )
        assert direct.stats()["tables"] == 4
        primary_direct = HomographClient(
            routed_pair["primary_server"].url, timeout=30.0
        )
        assert primary_direct.stats()["tables"] == 5

    def test_job_polls_stick_to_accepting_replica(self, routed_pair):
        client = routed_pair["client"]
        # Backends share no job store: every poll of every job must
        # land on the replica that accepted it or 404s would surface.
        for _ in range(4):
            job = client.submit(measure="lcc")
            assert client.wait(job, timeout=30.0).ranking.top(1)

    def test_dead_replica_is_retried_transparently(self, routed_pair):
        routed_pair["replica_server"].drain()  # kill one backend
        client = routed_pair["client"]
        for _ in range(6):
            assert client.detect(measure="lcc").ranking.top(1)
        assert routed_pair["replica"].healthy is False
        stats = client._request("GET", "/cluster/stats")
        assert stats["router"]["retried"] >= 1
        assert stats["router"]["bad_gateway"] == 0

    def test_dark_fleet_is_503_no_healthy_replica(self, routed_pair):
        routed_pair["primary"].mark_unhealthy()
        routed_pair["replica"].mark_unhealthy()
        client = routed_pair["client"]
        with pytest.raises(ServiceError) as info:
            client.detect(measure="lcc")
        assert info.value.status == 503
        assert info.value.code == "no-healthy-replica"
        assert info.value.retry_after is not None
        # Heal the fleet: traffic resumes without reconnecting.
        routed_pair["primary"].mark_healthy()
        routed_pair["replica"].mark_healthy()
        assert client.detect(measure="lcc").ranking.top(1)

    def test_cluster_stats_shape(self, routed_pair):
        stats = routed_pair["client"]._request("GET", "/cluster/stats")
        assert stats["primary"] == "primary"
        names = {row["name"] for row in stats["replicas"]}
        assert names == {"primary", "replica-1"}
        for row in stats["replicas"]:
            assert set(row) >= {
                "name", "role", "url", "healthy", "draining",
                "in_flight", "restarts", "applied_seq", "oplog_lag",
            }
        assert set(stats["router"]) == {
            "served", "retried", "bad_gateway", "no_healthy_replica",
            "jobs_tracked",
        }

    def test_concurrent_reads_spread_load(self, routed_pair):
        client_urls = [routed_pair["router"].url] * 8
        failures = []

        def hit(url):
            try:
                worker = HomographClient(url, timeout=30.0)
                worker.detect(measure="lcc")
            except Exception as error:  # noqa: BLE001
                failures.append(error)

        threads = [
            threading.Thread(target=hit, args=(url,))
            for url in client_urls
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
