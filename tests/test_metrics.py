"""Unit tests for repro.eval.metrics."""

import pytest

from repro.eval.metrics import (
    average_precision,
    precision_recall_at_k,
    ranking_overlap,
    recall_of_set,
    topk_curve,
)

RANKING = ["a", "b", "c", "d", "e", "f"]
TRUTH = {"a", "c", "e"}


class TestPrecisionRecallAtK:
    def test_perfect_prefix(self):
        pr = precision_recall_at_k(["a", "c", "e"], TRUTH, 3)
        assert pr.precision == 1.0
        assert pr.recall == 1.0
        assert pr.f1 == 1.0

    def test_partial(self):
        pr = precision_recall_at_k(RANKING, TRUTH, 3)
        # top-3 = a, b, c -> 2 hits
        assert pr.true_positives == 2
        assert pr.precision == pytest.approx(2 / 3)
        assert pr.recall == pytest.approx(2 / 3)

    def test_precision_equals_recall_at_truth_size(self):
        # The property the paper relies on when quoting one number.
        pr = precision_recall_at_k(RANKING, TRUTH, len(TRUTH))
        assert pr.precision == pr.recall == pr.f1

    def test_k_clamped_to_ranking_length(self):
        pr = precision_recall_at_k(RANKING, TRUTH, 100)
        assert pr.k == len(RANKING)
        assert pr.recall == 1.0

    def test_zero_k(self):
        pr = precision_recall_at_k(RANKING, TRUTH, 0)
        assert pr.precision == 0.0
        assert pr.f1 == 0.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_at_k(RANKING, TRUTH, -1)

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_at_k(RANKING, set(), 1)


class TestTopKCurve:
    def test_full_sweep(self):
        curve = topk_curve(RANKING, TRUTH)
        assert curve.ks == [1, 2, 3, 4, 5, 6]
        assert curve.precision[0] == 1.0  # "a" is a hit
        assert curve.recall[-1] == 1.0

    def test_explicit_cut_points(self):
        curve = topk_curve(RANKING, TRUTH, ks=[2, 4])
        assert curve.ks == [2, 4]
        assert curve.precision == [pytest.approx(1 / 2), pytest.approx(2 / 4)]

    def test_recall_monotone(self):
        curve = topk_curve(RANKING, TRUTH)
        assert curve.recall == sorted(curve.recall)

    def test_at_k(self):
        curve = topk_curve(RANKING, TRUTH)
        pr = curve.at_k(3)
        assert pr.true_positives == 2
        with pytest.raises(KeyError):
            curve.at_k(99)

    def test_best_f1(self):
        curve = topk_curve(RANKING, TRUTH)
        best = curve.best_f1()
        assert best.f1 == max(curve.f1)

    def test_matches_pointwise_evaluation(self):
        curve = topk_curve(RANKING, TRUTH)
        for i, k in enumerate(curve.ks):
            pr = precision_recall_at_k(RANKING, TRUTH, k)
            assert curve.precision[i] == pytest.approx(pr.precision)
            assert curve.recall[i] == pytest.approx(pr.recall)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(["a", "c", "e", "b"], TRUTH) == 1.0

    def test_worst_ranking(self):
        ap = average_precision(["b", "d", "f", "a", "c", "e"], TRUTH)
        assert ap == pytest.approx((1 / 4 + 2 / 5 + 3 / 6) / 3)

    def test_missing_truth_items_count_against(self):
        ap = average_precision(["a"], TRUTH)
        assert ap == pytest.approx(1 / 3)


class TestSetMetrics:
    def test_recall_of_set(self):
        pr = recall_of_set({"a", "b"}, TRUTH)
        assert pr.true_positives == 1
        assert pr.precision == 0.5
        assert pr.recall == pytest.approx(1 / 3)

    def test_empty_prediction(self):
        pr = recall_of_set(set(), TRUTH)
        assert pr.precision == 0.0
        assert pr.recall == 0.0


class TestRankingOverlap:
    def test_identical(self):
        assert ranking_overlap(RANKING, list(RANKING), 4) == 1.0

    def test_disjoint(self):
        assert ranking_overlap(["a", "b"], ["x", "y"], 2) == 0.0

    def test_partial(self):
        assert ranking_overlap(["a", "b", "c"], ["c", "b", "x"], 3) == (
            pytest.approx(2 / 3)
        )

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ranking_overlap(RANKING, RANKING, 0)
