"""Tests for the TUS-like benchmark generator (§4.2 / Table 1 row 3)."""

import numpy as np
import pytest

from repro.bench.tus import (
    NULL_TOKENS,
    TUSConfig,
    generate_tus,
)
from repro.core.normalize import normalize_value


@pytest.fixture(scope="module")
def tus():
    return generate_tus(TUSConfig.small())


class TestStructure:
    def test_tables_are_slices(self, tus):
        assert len(tus.lake) > 10
        for name in tus.lake.table_names:
            assert name.startswith("t0")

    def test_every_attribute_has_a_domain(self, tus):
        groups = tus.ground_truth.attribute_groups
        qnames = {c.qualified_name for c in tus.lake.iter_attributes()}
        assert qnames == set(groups)

    def test_attribute_domains_are_real_domains(self, tus):
        domain_ids = {d.domain_id for d in tus.domains}
        for group in tus.ground_truth.attribute_groups.values():
            assert group in domain_ids

    def test_string_and_numeric_domains_exist(self, tus):
        kinds = {d.kind for d in tus.domains}
        assert kinds == {"string", "numeric"}

    def test_attribute_sizes_are_skewed(self, tus):
        sizes = [c.distinct_count() for c in tus.lake.iter_attributes()]
        assert min(sizes) < 30
        assert max(sizes) > 10 * min(sizes)


class TestGroundTruth:
    def test_homograph_rate_in_paper_band(self, tus):
        truth = tus.ground_truth
        rate = len(truth.homographs) / len(truth.meanings)
        # Paper: 26,035 / 190,399 = 13.7%.
        assert 0.03 <= rate <= 0.30

    def test_homographs_span_multiple_domains(self, tus):
        truth = tus.ground_truth
        for value in list(truth.homographs)[:50]:
            assert truth.meanings[value] >= 2

    def test_null_tokens_have_many_meanings(self, tus):
        truth = tus.ground_truth
        null_meanings = [
            truth.meanings[normalize_value(t)]
            for t in NULL_TOKENS
            if normalize_value(t) in truth.meanings
        ]
        assert null_meanings, "no null tokens were placed"
        assert max(null_meanings) >= 3

    def test_numeric_homographs_exist(self, tus):
        # Small integers shared between numeric domains (paper's "50",
        # "125", "2" examples).
        numeric = [
            v for v in tus.homographs
            if v.isdigit()
        ]
        assert numeric

    def test_values_in_single_domain_are_unambiguous(self, tus):
        truth = tus.ground_truth
        single = [v for v, m in truth.meanings.items() if m == 1]
        assert len(single) > len(truth.homographs)
        for value in single[:50]:
            assert value not in truth.homographs


class TestDeterminism:
    def test_same_seed_same_lake(self):
        a = generate_tus(TUSConfig.small(seed=5))
        b = generate_tus(TUSConfig.small(seed=5))
        assert a.lake.table_names == b.lake.table_names
        name = a.lake.table_names[0]
        assert a.lake.table(name).rows == b.lake.table(name).rows
        assert a.homographs == b.homographs

    def test_different_seeds_differ(self):
        a = generate_tus(TUSConfig.small(seed=5))
        b = generate_tus(TUSConfig.small(seed=6))
        assert a.homographs != b.homographs


class TestScaling:
    def test_paper_config_is_larger(self):
        small = TUSConfig.small()
        paper = TUSConfig.paper()
        assert paper.num_seed_tables > small.num_seed_tables
        assert paper.num_domains > small.num_domains

    def test_detection_beats_chance(self):
        """Integration: BC ranking concentrates homographs at the top."""
        from repro import DomainNet
        from repro.eval.metrics import precision_recall_at_k

        tus = generate_tus(TUSConfig.small(seed=2))
        det = DomainNet.from_lake(tus.lake)
        result = det.detect(measure="betweenness", sample_size=400, seed=1)
        hom = tus.homographs
        pr = precision_recall_at_k(result.ranking.values, hom, 50)
        base_rate = len(hom) / len(result.ranking)
        assert pr.precision > 3 * base_rate


@pytest.mark.skipif(
    "REPRO_RUN_SLOW" not in __import__("os").environ,
    reason="paper-scale generation takes minutes; set REPRO_RUN_SLOW=1",
)
class TestPaperScale:
    def test_paper_config_statistics_band(self):
        """Published-scale lake: Table 1 row 3 order of magnitude."""
        tus = generate_tus(TUSConfig.paper())
        truth = tus.ground_truth
        assert len(tus.lake) > 800
        assert len(truth.meanings) > 100_000
        rate = len(truth.homographs) / len(truth.meanings)
        assert 0.05 <= rate <= 0.30
