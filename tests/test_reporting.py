"""Tests for repro.eval.reporting."""

import pytest

from repro.eval.reporting import (
    ascii_bars,
    ascii_chart,
    export_series_csv,
    export_series_json,
    load_series_json,
)


class TestAsciiChart:
    def test_basic_render(self):
        text = ascii_chart(
            [0, 1, 2, 3],
            {"precision": [1.0, 0.8, 0.6, 0.4]},
            title="figure 7",
        )
        assert "figure 7" in text
        assert "*" in text
        assert "*=precision" in text

    def test_multiple_series_distinct_glyphs(self):
        text = ascii_chart(
            [0, 1], {"a": [0.0, 1.0], "b": [1.0, 0.0]}
        )
        assert "*" in text and "o" in text
        assert "*=a" in text and "o=b" in text

    def test_constant_series(self):
        text = ascii_chart([0, 1, 2], {"flat": [0.5, 0.5, 0.5]})
        assert "*" in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"a": [1.0]})

    def test_empty(self):
        with pytest.raises(ValueError):
            ascii_chart([], {})

    def test_axis_labels_present(self):
        text = ascii_chart([10, 90], {"a": [2.0, 8.0]})
        assert "10" in text
        assert "90" in text
        assert "8" in text  # y max


class TestAsciiBars:
    def test_basic(self):
        text = ascii_bars(["x", "yy"], [1.0, 2.0], title="bars")
        lines = text.splitlines()
        assert lines[0] == "bars"
        assert lines[1].strip().startswith("x |")
        assert lines[2].count("#") > lines[1].count("#")

    def test_zero_values(self):
        text = ascii_bars(["a"], [0.0])
        assert "0" in text

    def test_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            ascii_bars([], [])


class TestExport:
    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "series.json"
        export_series_json(
            path, [1, 2], {"p": [0.9, 0.8]}, metadata={"k": 55}
        )
        back = load_series_json(path)
        assert back["x"] == [1, 2]
        assert back["series"]["p"] == [0.9, 0.8]
        assert back["metadata"]["k"] == 55

    def test_csv_layout(self, tmp_path):
        path = tmp_path / "series.csv"
        export_series_csv(
            path, [1, 2], {"p": [0.9, 0.8], "r": [0.1, 0.2]}, x_name="k"
        )
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "k,p,r"
        assert lines[1] == "1,0.9,0.1"
        assert lines[2] == "2,0.8,0.2"
