"""Shared fixtures: the paper's running example and small helper lakes."""

from __future__ import annotations

import pytest

from repro import DataLake, Table

# The four tables of Figure 1, cell for cell (T2 spells "Atlanta" in the
# text and "Atalanta" in Figure 4; we use the text spelling).
FIGURE1_TABLES = {
    "T1": {
        "Donor": ["Google", "Volkswagen", "BMW", "Amazon"],
        "At Risk": ["Panda", "Puma", "Jaguar", "Pelican"],
        "Donation": ["1M", "2M", "0.9M", "1.5M"],
    },
    "T2": {
        "name": ["Panda", "Panda", "Lemur", "Jaguar"],
        "locale": ["Memphis", "Atlanta", "National", "San Diego"],
        "num": ["2", "2", "20", "8"],
    },
    "T3": {
        "C1": ["XE", "Prius", "500"],
        "C2": ["Jaguar", "Toyota", "Fiat"],
        "C3": ["UK", "Japan", "Italy"],
    },
    "T4": {
        "Name": ["Jaguar", "Puma", "Apple", "Toyota"],
        "Revenue": ["25.80", "4.64", "456", "123"],
        "Total": ["43224", "13000", "370870", "123456"],
    },
}

# Ground truth for Figure 1: Jaguar (animal / car maker) and Puma
# (animal / company) are homographs; every other repeated value has one
# meaning.
FIGURE1_HOMOGRAPHS = {"JAGUAR", "PUMA"}


def make_figure1_lake() -> DataLake:
    """Fresh copy of the running-example lake."""
    return DataLake(
        Table.from_columns(name, columns)
        for name, columns in FIGURE1_TABLES.items()
    )


@pytest.fixture
def figure1_lake() -> DataLake:
    return make_figure1_lake()


@pytest.fixture
def figure1_homographs() -> set:
    return set(FIGURE1_HOMOGRAPHS)
