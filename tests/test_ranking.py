"""Unit tests for repro.core.ranking."""

import pytest

from repro.core.ranking import (
    HomographRanking,
    format_ranking,
    rank_by_betweenness,
    rank_by_lcc,
)


@pytest.fixture
def scores():
    return {"JAGUAR": 0.025, "PUMA": 0.003, "TOYOTA": 0.002, "PANDA": 0.002}


class TestOrdering:
    def test_betweenness_descending(self, scores):
        ranking = rank_by_betweenness(scores)
        assert ranking.values[:2] == ["JAGUAR", "PUMA"]
        assert ranking[0].rank == 1
        assert ranking[0].score == 0.025

    def test_lcc_ascending(self):
        ranking = rank_by_lcc({"JAGUAR": 0.36, "PANDA": 0.46, "PUMA": 0.43})
        assert ranking.values == ["JAGUAR", "PUMA", "PANDA"]

    def test_ties_break_lexicographically(self, scores):
        ranking = rank_by_betweenness(scores)
        # PANDA and TOYOTA tie at 0.002; PANDA < TOYOTA
        assert ranking.values[2:] == ["PANDA", "TOYOTA"]

    def test_ranks_are_one_based_and_sequential(self, scores):
        ranking = rank_by_betweenness(scores)
        assert [e.rank for e in ranking] == [1, 2, 3, 4]


class TestAccess:
    def test_top_k(self, scores):
        ranking = rank_by_betweenness(scores)
        assert ranking.top_values(2) == ["JAGUAR", "PUMA"]
        assert len(ranking.top(99)) == 4

    def test_top_negative(self, scores):
        with pytest.raises(ValueError):
            rank_by_betweenness(scores).top(-1)

    def test_rank_of(self, scores):
        ranking = rank_by_betweenness(scores)
        assert ranking.rank_of("JAGUAR") == 1
        assert ranking.rank_of("MISSING") is None

    def test_score_of(self, scores):
        ranking = rank_by_betweenness(scores)
        assert ranking.score_of("PUMA") == 0.003
        assert ranking.score_of("MISSING") is None

    def test_len_and_iter(self, scores):
        ranking = rank_by_betweenness(scores)
        assert len(ranking) == 4
        assert [e.value for e in ranking] == ranking.values


class TestPagination:
    def test_page_walk_covers_everything_in_order(self, scores):
        ranking = rank_by_betweenness(scores)
        walked = []
        cursor, pages = None, 0
        while True:
            page = ranking.page(cursor=cursor, limit=3)
            walked.extend(page.entries)
            pages += 1
            assert page.total == len(ranking)
            assert page.measure == "betweenness"
            assert page.descending is True
            cursor = page.next_cursor
            if cursor is None:
                break
        assert pages == 2  # 4 entries / limit 3
        assert walked == list(ranking)

    def test_pages_are_slices_not_copserialized(self, scores):
        # Entries are shared with the ranking (no per-page rebuild).
        ranking = rank_by_lcc(scores)
        page = ranking.page(limit=2)
        assert page.entries[0] is ranking[0]

    def test_default_start_and_exhaustion(self, scores):
        ranking = rank_by_betweenness(scores)
        page = ranking.page(limit=99)
        assert page.next_cursor is None
        assert len(page.entries) == len(ranking)
        # A cursor exactly at the end yields an empty terminal page.
        page = ranking.page(cursor=str(len(ranking)), limit=2)
        assert page.entries == [] and page.next_cursor is None

    @pytest.mark.parametrize("cursor", ["x", "-1", "1.5", "", "999"])
    def test_bad_cursor_rejected(self, scores, cursor):
        with pytest.raises(ValueError):
            rank_by_betweenness(scores).page(cursor=cursor)

    @pytest.mark.parametrize("limit", [0, -2])
    def test_bad_limit_rejected(self, scores, limit):
        with pytest.raises(ValueError):
            rank_by_betweenness(scores).page(limit=limit)

    def test_page_to_dict_shape(self, scores):
        payload = rank_by_betweenness(scores).page(limit=2).to_dict()
        assert set(payload) == {
            "measure", "descending", "total", "next_cursor", "entries",
        }
        assert payload["next_cursor"] == "2"
        assert payload["entries"][0] == {
            "rank": 1, "value": "JAGUAR", "score": 0.025,
        }


class TestFormatting:
    def test_format_with_labels(self, scores):
        ranking = rank_by_betweenness(scores)
        text = format_ranking(
            ranking, k=2, labels={"JAGUAR": True, "PUMA": False}
        )
        lines = text.splitlines()
        assert "top-2 by betweenness" in lines[0]
        assert "[homograph]" in lines[1]
        assert "[unambiguous]" in lines[2]

    def test_format_without_labels(self, scores):
        text = format_ranking(rank_by_betweenness(scores), k=1)
        assert "[homograph]" not in text
