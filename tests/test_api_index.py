"""Tests for the stateful HomographIndex: caching and incrementality."""

import pytest

from repro import (
    DataLake,
    DetectRequest,
    HomographIndex,
    MeasureOutput,
    Table,
)
from repro.api import register_measure, unregister_measure


@pytest.fixture
def counting_measure():
    """A registered measure that counts how often it actually runs."""
    calls = {"count": 0}

    def measure(graph, request):
        calls["count"] += 1
        return MeasureOutput(
            scores={
                graph.value_name(v): float(graph.degree(v))
                for v in range(graph.num_values)
            }
        )

    register_measure("counting-test", measure)
    yield calls
    unregister_measure("counting-test")


def extra_table() -> Table:
    return Table.from_columns(
        "T5_extra", {"maker": ["Jaguar", "Tesla"], "country": ["UK", "US"]}
    )


class TestScoreCache:
    def test_second_detect_does_not_recompute(
        self, figure1_lake, counting_measure
    ):
        index = HomographIndex(figure1_lake)
        first = index.detect(measure="counting-test")
        second = index.detect(measure="counting-test")
        assert counting_measure["count"] == 1
        assert first.cached is False
        assert second.cached is True
        assert second.ranking == first.ranking
        assert second.scores == first.scores

    def test_caller_mutation_cannot_poison_cache(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        first = index.detect(measure="betweenness")
        first.scores.clear()
        first.parameters["seed"] = "tampered"
        second = index.detect(measure="betweenness")
        assert second.cached is True
        assert second.scores != {}
        assert second.parameters["seed"] is None

    def test_cache_keyed_on_full_config(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        index.detect(measure="betweenness", sample_size=5, seed=1)
        index.detect(measure="betweenness", sample_size=5, seed=2)
        index.detect(measure="lcc")
        info = index.cache_info()
        assert info.hits == 0
        assert info.misses == 3
        assert info.size == 3

    def test_request_and_kwargs_share_cache_entry(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        index.detect(DetectRequest(measure="lcc"))
        hit = index.detect(measure="lcc")
        assert hit.cached is True
        assert index.cache_info().hits == 1

    def test_kwargs_override_request(self, figure1_lake, counting_measure):
        index = HomographIndex(figure1_lake)
        base = DetectRequest(measure="betweenness", seed=3)
        response = index.detect(base, measure="counting-test")
        assert response.measure == "counting-test"
        assert response.request.seed == 3

    def test_clear_cache_forces_recompute(
        self, figure1_lake, counting_measure
    ):
        index = HomographIndex(figure1_lake)
        index.detect(measure="counting-test")
        index.clear_cache()
        index.detect(measure="counting-test")
        assert counting_measure["count"] == 2
        assert index.cache_info().size == 1

    def test_graph_built_once_across_measures(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        graph = index.graph
        index.detect(measure="betweenness")
        index.detect(measure="lcc")
        assert index.graph is graph


class TestIncrementalUpdates:
    def test_add_table_matches_from_scratch(self, figure1_lake):
        incremental = HomographIndex(figure1_lake.copy())
        incremental.detect(measure="betweenness")  # warm graph + cache
        incremental.add_table(extra_table())
        updated = incremental.detect(measure="betweenness")

        fresh_lake = figure1_lake.copy()
        fresh_lake.add_table(extra_table())
        fresh = HomographIndex(fresh_lake).detect(measure="betweenness")

        assert updated.cached is False
        assert updated.ranking == fresh.ranking
        assert updated.scores == fresh.scores

    def test_remove_table_matches_from_scratch(self, figure1_lake):
        incremental = HomographIndex(figure1_lake.copy())
        incremental.detect(measure="betweenness")
        removed = incremental.remove_table("T3")
        assert removed.name == "T3"
        updated = incremental.detect(measure="betweenness")

        fresh_lake = figure1_lake.copy()
        fresh_lake.remove_table("T3")
        fresh = HomographIndex(fresh_lake).detect(measure="betweenness")

        assert updated.ranking == fresh.ranking
        assert updated.scores == fresh.scores

    def test_mutation_invalidates_cache(self, figure1_lake, counting_measure):
        index = HomographIndex(figure1_lake)
        index.detect(measure="counting-test")
        index.add_table(extra_table())
        index.detect(measure="counting-test")
        assert counting_measure["count"] == 2

    def test_mutation_invalidates_graph_lazily(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        before = index.graph
        index.add_table(extra_table())
        index.remove_table("T5_extra")  # burst of updates: no build yet
        after = index.graph  # single rebuild happens here
        assert after is not before
        assert after.num_values == before.num_values

    def test_replace_table_invalidates(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        assert index.graph.has_value("JAGUAR")
        index.replace_table(
            Table.from_columns("T3", {"C2": ["Honda", "Kia", "Kia"]})
        )
        index.detect(measure="betweenness")
        assert index.cache_info().size == 1

    def test_empty_index_grows(self):
        index = HomographIndex()
        assert len(index.detect(measure="betweenness").ranking) == 0
        index.add_table(Table.from_columns("t1", {"a": ["x", "y"]}))
        index.add_table(Table.from_columns("t2", {"b": ["x", "z"]}))
        response = index.detect(measure="betweenness")
        assert "X" in response.scores


class TestAnalysisHelpers:
    def test_unpruned_graph_cached_and_complete(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        unpruned = index.unpruned_graph
        assert unpruned is index.unpruned_graph
        assert unpruned.num_values > index.graph.num_values

    def test_unpruned_graph_is_graph_when_not_pruning(self, figure1_lake):
        index = HomographIndex(figure1_lake, prune_candidates=False)
        assert index.unpruned_graph is index.graph

    def test_classify_errors_uses_index_state(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        top = index.detect(measure="betweenness").top_values(2)
        verdicts = index.classify_errors(top)
        assert set(verdicts) == set(top)

    def test_estimate_meanings(self, figure1_lake):
        # On the full graph the car attributes (T3.C2, T4.Name) and the
        # animal attributes (T1.At Risk, T2.name) split into meanings.
        index = HomographIndex(figure1_lake, prune_candidates=False)
        estimate = index.estimate_meanings("JAGUAR")
        assert estimate.num_meanings >= 2

    def test_from_directory(self, tmp_path):
        (tmp_path / "zoo.csv").write_text(
            "animal,city\nJaguar,Memphis\nPanda,Atlanta\n"
        )
        (tmp_path / "cars.csv").write_text(
            "maker,model\nJaguar,XE\nToyota,Prius\n"
        )
        index = HomographIndex.from_directory(tmp_path)
        assert len(index.lake) == 2
        assert "JAGUAR" in index.detect(measure="betweenness").scores


class TestLegacyShim:
    def test_from_lake_warns_deprecation(self, figure1_lake):
        from repro import DomainNet

        with pytest.deprecated_call():
            DomainNet.from_lake(figure1_lake)

    def test_shim_matches_index(self, figure1_lake, figure1_homographs):
        from repro import DomainNet

        with pytest.deprecated_call():
            detector = DomainNet.from_lake(figure1_lake)
        legacy = detector.detect(measure="betweenness")
        modern = HomographIndex(figure1_lake).detect(measure="betweenness")
        assert legacy.ranking == modern.ranking
        assert legacy.scores == modern.scores
        assert set(legacy.top_values(2)) == figure1_homographs


class TestStatsSnapshot:
    def test_stats_shape_and_progression(self, figure1_lake):
        index = HomographIndex(figure1_lake)
        stats = index.stats()
        assert stats["tables"] == 4
        assert stats["graph_built"] is False
        assert stats["cache"] == {
            "hits": 0, "misses": 0, "size": 0, "coalesced": 0,
        }
        assert stats["pool"] == {"configured": False}
        assert stats["closed"] is False
        assert stats["active_detections"] == 0

        index.detect(measure="lcc")
        index.detect(measure="lcc")
        stats = index.stats()
        assert stats["graph_built"] is True
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["size"] == 1

        index.add_table(extra_table())
        assert index.stats()["generation"] == 1
        index.close()
        assert index.stats()["closed"] is True

    def test_stats_reports_persistent_pool(self, figure1_lake):
        import json

        from repro import ExecutionConfig

        config = ExecutionConfig(
            backend="process", n_jobs=2, persistent=True
        )
        with HomographIndex(
            figure1_lake, prune_candidates=False, execution=config
        ) as index:
            assert index.stats()["pool"] == {"configured": True}
            index.detect(measure="betweenness")
            pool = index.stats()["pool"]
            assert pool["backend"] == "ProcessBackend"
            assert pool["jobs"] == 2
            assert pool["persistent"] is True
            assert pool["alive"] is True
            assert pool["segments"] == 2
            # The whole snapshot is JSON-safe by construction.
            json.dumps(index.stats())
