"""Tests for meaning-count estimation (repro.core.communities)."""

import pytest

from repro.core.builder import build_graph, build_graph_from_columns
from repro.core.communities import estimate_all_meanings, estimate_meanings


class TestRunningExample:
    """Figure 1 ground truth: Jaguar/Puma 2 meanings, Toyota/Panda 1."""

    def test_jaguar_two_meanings(self, figure1_lake):
        graph = build_graph(figure1_lake)
        estimate = estimate_meanings(graph, "JAGUAR")
        assert estimate.num_meanings == 2
        assert estimate.is_homograph
        groups = [set(g) for g in estimate.groups]
        assert {"T1.At Risk", "T2.name"} in groups
        assert {"T3.C2", "T4.Name"} in groups

    def test_puma_two_meanings(self, figure1_lake):
        graph = build_graph(figure1_lake)
        assert estimate_meanings(graph, "PUMA").num_meanings == 2

    def test_toyota_one_meaning(self, figure1_lake):
        graph = build_graph(figure1_lake)
        estimate = estimate_meanings(graph, "TOYOTA")
        assert estimate.num_meanings == 1
        assert not estimate.is_homograph

    def test_panda_one_meaning(self, figure1_lake):
        graph = build_graph(figure1_lake)
        assert estimate_meanings(graph, "PANDA").num_meanings == 1


class TestEdgeCases:
    def test_single_attribute_value(self):
        graph = build_graph_from_columns({"A": ["x", "y"]})
        estimate = estimate_meanings(graph, "X")
        assert estimate.num_meanings == 1

    def test_many_meanings(self):
        # NULL appears in four mutually disjoint columns.
        columns = {
            f"C{i}": ["null"] + [f"v{i}_{j}" for j in range(5)]
            for i in range(4)
        }
        graph = build_graph_from_columns(columns)
        estimate = estimate_meanings(graph, "NULL")
        assert estimate.num_meanings == 4

    def test_threshold_controls_merging(self):
        # Two city columns share 1 of 4 other values: J = 1/7.
        columns = {
            "A": ["h", "a1", "a2", "a3", "shared"],
            "B": ["h", "b1", "b2", "b3", "shared"],
        }
        graph = build_graph_from_columns(columns)
        loose = estimate_meanings(graph, "H", threshold=0.1)
        strict = estimate_meanings(graph, "H", threshold=0.5)
        assert loose.num_meanings == 1
        assert strict.num_meanings == 2

    def test_invalid_threshold(self, figure1_lake):
        graph = build_graph(figure1_lake)
        with pytest.raises(ValueError):
            estimate_meanings(graph, "JAGUAR", threshold=0.0)

    def test_unknown_value(self, figure1_lake):
        graph = build_graph(figure1_lake)
        with pytest.raises(Exception):
            estimate_meanings(graph, "NOT_THERE")


class TestEstimateAll:
    def test_defaults_to_candidates(self, figure1_lake):
        graph = build_graph(figure1_lake)
        estimates = estimate_all_meanings(graph)
        # Candidates: values in >= 2 attributes.
        assert set(estimates) == {"JAGUAR", "PUMA", "PANDA", "TOYOTA"}
        assert estimates["JAGUAR"].num_meanings == 2

    def test_explicit_values(self, figure1_lake):
        graph = build_graph(figure1_lake)
        estimates = estimate_all_meanings(graph, values=["PANDA"])
        assert list(estimates) == ["PANDA"]

    def test_sb_homographs_have_two_meanings(self):
        from repro.bench.synthetic import SBConfig, generate_sb

        sb = generate_sb(SBConfig(rows=300, seed=1))
        graph = build_graph(sb.lake)
        correct = 0
        for value in sorted(sb.homographs)[:20]:
            estimate = estimate_meanings(graph, value)
            if estimate.num_meanings == 2:
                correct += 1
        assert correct >= 15  # the estimator is right most of the time
