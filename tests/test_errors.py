"""Tests for error-vs-genuine homograph classification."""

import pytest

from repro import DataLake, Table
from repro.core.errors import classify_homographs


@pytest.fixture
def lake_with_error():
    """YELLOW: 4 legitimate color cells plus one stray habitat cell."""
    return DataLake([
        Table.from_columns("birds", {
            "color": ["Yellow", "Yellow", "Red", "Yellow", "Yellow"],
            "habitat": ["Forest", "Yellow", "Marsh", "Coast", "Desert"],
        }),
        Table.from_columns("flowers", {
            "color": ["Yellow", "Blue", "Red", "White", "Pink"],
            "region": ["Alps", "Andes", "Rockies", "Alps", "Urals"],
        }),
        # Genuine homograph: JAGUAR recurs in both meanings.
        Table.from_columns("zoo", {
            "animal": ["Jaguar", "Panda", "Jaguar", "Lemur", "Otter"],
        }),
        Table.from_columns("cars", {
            "maker": ["Jaguar", "Toyota", "Jaguar", "Fiat", "Jaguar"],
        }),
    ])


class TestClassification:
    def test_stray_cell_is_error(self, lake_with_error):
        verdicts = classify_homographs(lake_with_error, ["YELLOW"])
        assert verdicts["YELLOW"].kind == "error"
        assert verdicts["YELLOW"].meaning_support[-1] == 1

    def test_recurring_meanings_are_genuine(self, lake_with_error):
        verdicts = classify_homographs(lake_with_error, ["JAGUAR"])
        assert verdicts["JAGUAR"].kind == "genuine"
        assert verdicts["JAGUAR"].num_meanings == 2

    def test_single_meaning_value(self, lake_with_error):
        verdicts = classify_homographs(lake_with_error, ["RED"])
        assert verdicts["RED"].kind == "single-meaning"

    def test_unknown_values_skipped(self, lake_with_error):
        verdicts = classify_homographs(lake_with_error, ["NOPE"])
        assert verdicts == {}

    def test_support_counts_cells_not_columns(self, lake_with_error):
        verdicts = classify_homographs(lake_with_error, ["JAGUAR"])
        # zoo has 2 JAGUAR cells, cars has 3.
        assert sorted(verdicts["JAGUAR"].meaning_support) == [2, 3]

    def test_dominant_support_guard(self):
        # Both meanings weakly supported: sparsity, not error.
        lake = DataLake([
            Table.from_columns("a", {"x": ["Jag", "v1"]}),
            Table.from_columns("b", {"y": ["Jag", "w1"]}),
        ])
        verdicts = classify_homographs(lake, ["JAG"])
        assert verdicts["JAG"].kind == "genuine"

    def test_reuses_provided_graph(self, lake_with_error):
        from repro.core.builder import build_graph

        graph = build_graph(lake_with_error)
        verdicts = classify_homographs(
            lake_with_error, ["YELLOW"], graph=graph
        )
        assert verdicts["YELLOW"].kind == "error"
